package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// CellType classifies a grid cell relative to a reception zone
// (Section 5.1): T+ cells are fully inside the zone, T- cells do not
// intersect it, and T? cells form the bounded uncertainty ring around
// the boundary.
type CellType int

// Cell classifications.
const (
	TMinus    CellType = iota // outside the zone
	TPlus                     // inside the zone
	TQuestion                 // uncertainty ring straddling the boundary
)

// String implements fmt.Stringer.
func (t CellType) String() string {
	switch t {
	case TPlus:
		return "T+"
	case TMinus:
		return "T-"
	case TQuestion:
		return "T?"
	default:
		return fmt.Sprintf("CellType(%d)", int(t))
	}
}

// GammaSafety is the denominator constant in the grid-pitch formula
// gamma = eps * delta~^2 / (GammaSafety * Delta~). The paper derives
// 18 from its 9-cell accounting; we use a slightly larger constant to
// absorb the denser sampling of the star-shape BRP trace, keeping the
// area(H?) <= eps * area(H) guarantee with margin.
const GammaSafety = 40

// QDS is the per-zone approximate point-location structure of
// Section 5.1: a gamma-spaced grid whose cells are classified T+, T-
// or T?, stored as one entry per grid column holding that column's T?
// row intervals. Size is O(#T? cells) = O(eps^-1); queries are O(1)
// plus an O(log) binary search within a column's interval list.
type QDS struct {
	net     *Network
	station int
	grid    Grid
	eps     float64
	bounds  ZoneBounds
	cols    map[int]*qdsColumn
	// numUncertain is the total count of T? cells.
	numUncertain int
	// pointZone marks degenerate zones (shared station location):
	// every cell is T- except the station point itself, which is T?
	// and resolves to not-heard under the interferer-coincidence
	// convention of Network.SINR.
	pointZone bool
}

// qdsColumn stores the sorted, disjoint T? row intervals of one grid
// column. Rows strictly between the column's outermost T? rows that
// fall in no interval are T+; all other rows are T-.
type qdsColumn struct {
	intervals []rowSpan
	minRow    int
	maxRow    int
}

// rowSpan is an inclusive row range [Lo, Hi].
type rowSpan struct {
	Lo, Hi int
}

// BuildQDS constructs the Section 5.1 data structure for station k's
// reception zone with performance parameter 0 < eps < 1. Requirements
// mirror the paper's: uniform power, alpha = 2, beta > 1 (so the zone
// is compact, convex and fat) and a non-trivial network. A station
// whose location is shared by another yields a degenerate point-zone
// structure.
func (n *Network) BuildQDS(k int, eps float64) (*QDS, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: performance parameter eps must be in (0, 1), got %v", eps)
	}
	if n.alpha != 2 {
		return nil, ErrNeedAlpha2
	}
	if !n.uniform {
		return nil, ErrNeedUniform
	}
	if n.beta <= 1 {
		return nil, ErrNeedBetaGT1
	}
	if k < 0 || k >= len(n.stations) {
		return nil, fmt.Errorf("core: station index %d out of range [0, %d)", k, len(n.stations))
	}
	if n.SharesLocation(k) {
		return &QDS{net: n, station: k, eps: eps, pointZone: true, cols: map[int]*qdsColumn{}}, nil
	}

	bounds, err := n.SampledBounds(k, 128)
	if err != nil {
		return nil, err
	}
	gamma := eps * bounds.DeltaLower * bounds.DeltaLower / (GammaSafety * bounds.DeltaUpper)
	grid, err := NewGrid(n.stations[k], gamma)
	if err != nil {
		return nil, err
	}

	z, err := n.Zone(k)
	if err != nil {
		return nil, err
	}
	trace, err := z.TraceBoundary(gamma, BRPOptions{})
	if err != nil {
		return nil, err
	}

	// Visited boundary cells, inflated to their 9-cells (the paper's
	// ♯C), become the T? ring.
	ring := make(map[Cell]struct{}, 16*len(trace)/2)
	var prev Cell
	havePrev := false
	for _, p := range trace {
		c := grid.CellOf(p)
		if havePrev && c == prev {
			continue
		}
		prev, havePrev = c, true
		for _, nc := range grid.NineCell(c) {
			ring[nc] = struct{}{}
		}
	}

	q := &QDS{
		net:          n,
		station:      k,
		grid:         grid,
		eps:          eps,
		bounds:       bounds,
		cols:         make(map[int]*qdsColumn),
		numUncertain: len(ring),
	}
	// Bucket ring rows by column.
	rows := make(map[int][]int)
	//sinr:nondeterministic-ok per-column row lists are sorted below before any interval is derived
	for c := range ring {
		rows[c.Col] = append(rows[c.Col], c.Row)
	}
	for col, rr := range rows {
		sort.Ints(rr)
		qc := &qdsColumn{minRow: rr[0], maxRow: rr[len(rr)-1]}
		span := rowSpan{Lo: rr[0], Hi: rr[0]}
		for _, r := range rr[1:] {
			if r <= span.Hi+1 {
				if r > span.Hi {
					span.Hi = r
				}
				continue
			}
			qc.intervals = append(qc.intervals, span)
			span = rowSpan{Lo: r, Hi: r}
		}
		qc.intervals = append(qc.intervals, span)
		q.cols[col] = qc
	}
	return q, nil
}

// Station returns the index of the zone's station.
func (q *QDS) Station() int { return q.station }

// Eps returns the performance parameter the structure was built with.
func (q *QDS) Eps() float64 { return q.eps }

// Gamma returns the grid pitch.
func (q *QDS) Gamma() float64 { return q.grid.Gamma }

// Bounds returns the delta/Delta bounds used to size the grid.
func (q *QDS) Bounds() ZoneBounds { return q.bounds }

// NumUncertainCells returns |T?|, the size driver of the structure.
func (q *QDS) NumUncertainCells() int { return q.numUncertain }

// CoverBox returns a box guaranteed to contain every point Classify
// answers T+ or T? for — the zone plus its uncertainty ring. It is
// derived from the stored columns (every non-T- cell lies in a stored
// column between its outermost T? rows) and padded by one grid pitch
// so floating-point disagreement between the box arithmetic and
// CellOf's floor can never misplace a boundary point. Points outside
// the box are certifiably T-, which is what lets a spatial index skip
// this structure entirely for most of the plane.
func (q *QDS) CoverBox() geom.Box {
	if q.pointZone {
		s := q.net.stations[q.station]
		// Classify answers T? only within geom.Eps of the station.
		pad := 2 * geom.Eps
		return geom.NewBox(geom.Pt(s.X-pad, s.Y-pad), geom.Pt(s.X+pad, s.Y+pad))
	}
	first := true
	var colMin, colMax, rowMin, rowMax int
	//sinr:nondeterministic-ok commutative min/max reduction; result is order-independent
	for col, qc := range q.cols {
		if first {
			colMin, colMax, rowMin, rowMax = col, col, qc.minRow, qc.maxRow
			first = false
			continue
		}
		if col < colMin {
			colMin = col
		}
		if col > colMax {
			colMax = col
		}
		if qc.minRow < rowMin {
			rowMin = qc.minRow
		}
		if qc.maxRow > rowMax {
			rowMax = qc.maxRow
		}
	}
	if first {
		// No stored columns: everything is T-; an inverted box indexes
		// nowhere.
		return geom.Box{Min: geom.Pt(1, 1), Max: geom.Pt(-1, -1)}
	}
	pad := q.grid.Gamma
	return geom.NewBox(
		geom.Pt(q.grid.ColumnX(colMin)-pad, q.grid.RowY(rowMin)-pad),
		geom.Pt(q.grid.ColumnX(colMax+1)+pad, q.grid.RowY(rowMax+1)+pad),
	)
}

// NumColumns returns the number of stored grid columns.
func (q *QDS) NumColumns() int { return len(q.cols) }

// UncertainArea returns area(H?) = |T?| * gamma^2.
func (q *QDS) UncertainArea() float64 {
	return float64(q.numUncertain) * q.grid.Gamma * q.grid.Gamma
}

// Classify returns the classification of the cell containing p, in
// O(1) map lookup plus O(log) within-column search.
//
//sinr:hotpath
func (q *QDS) Classify(p geom.Point) CellType {
	if q.pointZone {
		if geom.ApproxEqual(p, q.net.stations[q.station], geom.Eps) {
			return TQuestion
		}
		return TMinus
	}
	cell := q.grid.CellOf(p)
	col, ok := q.cols[cell.Col]
	if !ok {
		return TMinus
	}
	if cell.Row < col.minRow || cell.Row > col.maxRow {
		return TMinus
	}
	// Binary search the sorted disjoint intervals.
	iv := col.intervals
	i := sort.Search(len(iv), func(j int) bool { return iv[j].Hi >= cell.Row })
	if i < len(iv) && iv[i].Lo <= cell.Row {
		return TQuestion
	}
	// Not in any T? interval but strictly between the column's
	// outermost T? rows: there is a T? cell to the north and to the
	// south, so the cell is interior (paper's column rule).
	return TPlus
}

// VerifyColumns cross-checks the structure against the paper's exact
// segment-test machinery: for every stored column it computes the true
// boundary crossings of ∂H_k along the column's center vertical line
// (Sturm root isolation on the boundary polynomial) and verifies each
// crossing row is covered by a T? interval. It returns the number of
// uncovered crossings (0 for a sound structure).
func (q *QDS) VerifyColumns() (int, error) {
	if q.pointZone {
		return 0, nil
	}
	bad := 0
	extent := q.bounds.DeltaUpper * 2
	// Iterate columns in sorted order so the early error return below
	// surfaces the same column on every run.
	cols := make([]int, 0, len(q.cols))
	for col := range q.cols {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	for _, col := range cols {
		qc := q.cols[col]
		x := q.grid.ColumnX(col) + q.grid.Gamma/2
		line := geom.Line{P: geom.Pt(x, q.grid.Anchor.Y), D: geom.Pt(0, 1)}
		roots, err := q.net.LineBoundaryCrossings(q.station, line, q.grid.Gamma/1024)
		if err != nil {
			return bad, err
		}
		for _, t := range roots {
			if math.Abs(t) > extent {
				continue // crossing of another zone's far lobe, not ours
			}
			row := q.grid.CellOf(line.At(t)).Row
			if !qc.covers(row) {
				bad++
			}
		}
	}
	return bad, nil
}

//sinr:hotpath
func (c *qdsColumn) covers(row int) bool {
	iv := c.intervals
	i := sort.Search(len(iv), func(j int) bool { return iv[j].Hi >= row })
	return i < len(iv) && iv[i].Lo <= row
}
