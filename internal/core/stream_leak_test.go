package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/geom"
)

// waitForGoroutines polls until the goroutine count drops to at most
// want or the deadline passes, returning the last observed count.
// Polling absorbs scheduler lag between cancellation and goroutine
// exit.
func waitForGoroutines(want int, deadline time.Duration) int {
	var n int
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	return n
}

// TestLocateStreamCancellationNoLeak cancels an active stream and
// abandons its output channel undrained, then checks every pipeline
// goroutine (reader, workers, emitter) exits. Run with a generous
// margin: other tests' goroutines may still be winding down.
func TestLocateStreamCancellationNoLeak(t *testing.T) {
	n := mustNet(t, []geom.Point{
		geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(-1, 2.5), geom.Pt(1.5, -2),
	}, 0.01, 3)
	loc, err := n.BuildLocator(0.2)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()

	const rounds = 8
	for r := 0; r < rounds; r++ {
		ctx, cancel := context.WithCancel(context.Background())
		in := make(chan geom.Point)
		out := loc.LocateStreamOpts(ctx, in, BatchOptions{Workers: 4})

		// Feeder keeps offering points until the pipeline stops taking
		// them; it must also exit once ctx is cancelled.
		go func() {
			defer close(in)
			for i := 0; ; i++ {
				select {
				case <-ctx.Done():
					return
				case in <- geom.Pt(float64(i%7)-3, float64(i%5)-2):
				}
			}
		}()

		// Take a few answers, then cancel mid-flight and abandon out
		// without draining it.
		for i := 0; i < 10; i++ {
			if _, ok := <-out; !ok {
				t.Fatal("stream closed prematurely")
			}
		}
		cancel()
	}

	after := waitForGoroutines(before, 5*time.Second)
	if after > before {
		t.Errorf("goroutines: %d before, %d after %d cancelled streams (pipeline leak)", before, after, rounds)
	}
}

// TestLocateStreamCloseNoLeak is the companion clean-shutdown check:
// closing the input and draining the output must also leave no
// pipeline goroutines behind.
func TestLocateStreamCloseNoLeak(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0)}, 0, 4)
	loc, err := n.BuildLocator(0.2)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan geom.Point, 64)
	for i := 0; i < 64; i++ {
		in <- geom.Pt(float64(i)*0.05-1, 0.1)
	}
	close(in)
	got := 0
	for range loc.LocateStream(ctx, in) {
		got++
	}
	if got != 64 {
		t.Fatalf("drained %d answers, want 64", got)
	}

	after := waitForGoroutines(before, 5*time.Second)
	if after > before {
		t.Errorf("goroutines: %d before, %d after clean shutdown", before, after)
	}
}
