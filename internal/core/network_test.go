package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// twoStation returns the canonical analytic test network: unit-power
// stations at (0,0) and (1,0), no noise, beta = 4. The reception zone
// of station 0 is the Apollonius disk of ratio sqrt(beta) = 2:
// center (-1/3, 0), radius 2/3, so delta = 1/3 and Delta = 1.
func twoStation(t *testing.T) *Network {
	t.Helper()
	n, err := NewUniform([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkValidation(t *testing.T) {
	s := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	tests := []struct {
		name string
		fn   func() (*Network, error)
	}{
		{"noStations", func() (*Network, error) { return NewUniform(nil, 0, 2) }},
		{"negativeNoise", func() (*Network, error) { return NewUniform(s, -1, 2) }},
		{"zeroBeta", func() (*Network, error) { return NewUniform(s, 0, 0) }},
		{"nanBeta", func() (*Network, error) { return NewUniform(s, 0, math.NaN()) }},
		{"badAlpha", func() (*Network, error) { return NewNetwork(s, 0, 2, WithAlpha(0)) }},
		{"powerCountMismatch", func() (*Network, error) {
			return NewNetwork(s, 0, 2, WithPowers([]float64{1}))
		}},
		{"nonPositivePower", func() (*Network, error) {
			return NewNetwork(s, 0, 2, WithPowers([]float64{1, 0}))
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.fn(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestAccessorsAndDefaults(t *testing.T) {
	n := twoStation(t)
	if n.NumStations() != 2 {
		t.Errorf("NumStations = %d", n.NumStations())
	}
	if n.Alpha() != 2 {
		t.Errorf("Alpha = %v, want default 2", n.Alpha())
	}
	if n.Beta() != 4 || n.Noise() != 0 {
		t.Errorf("Beta=%v Noise=%v", n.Beta(), n.Noise())
	}
	if !n.IsUniform() {
		t.Error("uniform default expected")
	}
	if n.Power(0) != 1 || n.Power(1) != 1 {
		t.Error("default powers should be 1")
	}
	if n.Station(1) != geom.Pt(1, 0) {
		t.Errorf("Station(1) = %v", n.Station(1))
	}
	st := n.Stations()
	st[0] = geom.Pt(99, 99)
	if n.Station(0) != geom.Pt(0, 0) {
		t.Error("Stations() must return a copy")
	}
}

func TestIsTrivial(t *testing.T) {
	s := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	trivial, _ := NewUniform(s, 0, 1)
	if !trivial.IsTrivial() {
		t.Error("2 stations, N=0, beta=1 is trivial")
	}
	for _, n := range []*Network{
		mustNet(t, s, 0.1, 1),
		mustNet(t, s, 0, 2),
		mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}, 0, 1),
	} {
		if n.IsTrivial() {
			t.Errorf("%v should not be trivial", n)
		}
	}
}

func mustNet(t *testing.T, s []geom.Point, noise, beta float64) *Network {
	t.Helper()
	n, err := NewUniform(s, noise, beta)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEnergyKnownValues(t *testing.T) {
	n := twoStation(t)
	// E(s0, (2,0)) = 1/4.
	if got := n.Energy(0, geom.Pt(2, 0)); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Energy = %v, want 0.25", got)
	}
	// At the station itself, energy is infinite.
	if got := n.Energy(0, geom.Pt(0, 0)); !math.IsInf(got, 1) {
		t.Errorf("Energy at station = %v, want +Inf", got)
	}
}

func TestEnergyGeneralAlpha(t *testing.T) {
	n, err := NewNetwork([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}, 0, 2, WithAlpha(4))
	if err != nil {
		t.Fatal(err)
	}
	// E = dist^-4 = 2^-4 at distance 2.
	if got := n.Energy(0, geom.Pt(2, 0)); math.Abs(got-1.0/16) > 1e-12 {
		t.Errorf("Energy = %v, want 1/16", got)
	}
}

func TestSINRFormula(t *testing.T) {
	// Three stations; verify Equation (1) by hand at one point.
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(0, 3)}, 0.01, 2)
	p := geom.Pt(1, 0)
	e0 := 1.0 / 1.0  // dist 1
	e1 := 1.0 / 9.0  // dist 3
	e2 := 1.0 / 10.0 // dist sqrt(10)
	want := e0 / (e1 + e2 + 0.01)
	if got := n.SINR(0, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("SINR = %v, want %v", got, want)
	}
	// SINR at own station is +Inf; at an interferer it is 0.
	if got := n.SINR(0, geom.Pt(0, 0)); !math.IsInf(got, 1) {
		t.Errorf("SINR at own station = %v", got)
	}
	if got := n.SINR(0, geom.Pt(4, 0)); got != 0 {
		t.Errorf("SINR at interferer = %v", got)
	}
}

func TestHeardTwoStationAnalytic(t *testing.T) {
	n := twoStation(t)
	// Along the x-axis the zone of s0 is [mu_l, mu_r] with
	// mu_r = 1/(1+sqrt(beta)) = 1/3, mu_l = -1/(sqrt(beta)-1) = -1.
	tests := []struct {
		p    geom.Point
		want bool
	}{
		{geom.Pt(1.0/3, 0), true}, // right boundary (closed zone)
		{geom.Pt(0.3333, 0), true},
		{geom.Pt(0.34, 0), false},
		{geom.Pt(-1, 0), true}, // left boundary
		{geom.Pt(-1.01, 0), false},
		{geom.Pt(0, 0), true},          // the station itself
		{geom.Pt(-1.0/3, 2.0/3), true}, // top of the Apollonius disk
		{geom.Pt(-1.0/3, 0.67), false},
	}
	for _, tc := range tests {
		if got := n.Heard(0, tc.p); got != tc.want {
			t.Errorf("Heard(0, %v) = %v, want %v (SINR=%v)", tc.p, got, tc.want, n.SINR(0, tc.p))
		}
	}
}

func TestHeardByUniqueForBetaGT1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		pts := make([]geom.Point, 5)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		}
		n := mustNet(t, pts, 0.001, 1.5)
		for k := 0; k < 50; k++ {
			p := geom.Pt(rng.Float64()*10, rng.Float64()*10)
			heard := 0
			for i := 0; i < n.NumStations(); i++ {
				if n.Heard(i, p) {
					heard++
				}
			}
			if heard > 1 {
				t.Fatalf("trial %d: %d stations heard at %v with beta>1", trial, heard, p)
			}
			if i, ok := n.HeardBy(p); ok && !n.Heard(i, p) {
				t.Fatalf("HeardBy returned unheard station %d", i)
			}
		}
	}
}

func TestKappa(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4), geom.Pt(1, 0)}, 0, 2)
	if got := n.Kappa(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Kappa(0) = %v, want 1", got)
	}
	if got := n.Kappa(1); math.Abs(got-math.Hypot(2, 4)) > 1e-12 {
		t.Errorf("Kappa(1) = %v", got)
	}
	single := mustNet(t, []geom.Point{geom.Pt(0, 0)}, 0, 2)
	if got := single.Kappa(0); got != 0 {
		t.Errorf("single-station Kappa = %v", got)
	}
}

func TestSharesLocation(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(1, 1)}, 0, 2)
	if !n.SharesLocation(0) || !n.SharesLocation(1) {
		t.Error("coincident stations should share location")
	}
	if n.SharesLocation(2) {
		t.Error("station 2 is alone at its location")
	}
}

// TestTransformPreservesSINR verifies Lemma 2.3: a similarity transform
// with noise rescaled by 1/sigma^2 preserves all SINR values.
func TestTransformPreservesSINR(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(-1, 3)}
	n := mustNet(t, pts, 0.07, 3)
	for trial := 0; trial < 25; trial++ {
		theta := rng.Float64() * 2 * math.Pi
		sigma := 0.2 + rng.Float64()*5
		d := geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		f := geom.Similarity(theta, sigma, d)
		fn, err := n.Transform(f)
		if err != nil {
			t.Fatal(err)
		}
		if want := n.Noise() / (sigma * sigma); math.Abs(fn.Noise()-want) > 1e-12*(1+want) {
			t.Fatalf("noise = %v, want %v", fn.Noise(), want)
		}
		for k := 0; k < 10; k++ {
			p := geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
			for i := 0; i < n.NumStations(); i++ {
				a := n.SINR(i, p)
				b := fn.SINR(i, f.Apply(p))
				if math.IsInf(a, 1) != math.IsInf(b, 1) {
					t.Fatalf("infinity mismatch at station %d", i)
				}
				if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-6*(1+a) {
					t.Fatalf("SINR not preserved: %v vs %v (sigma=%v)", a, b, sigma)
				}
			}
		}
	}
}

func TestTransformRejectsDegenerate(t *testing.T) {
	n := twoStation(t)
	if _, err := n.Transform(geom.Scaling(0)); err == nil {
		t.Error("expected error for sigma = 0")
	}
}

func TestSubnetwork(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}, 0.1, 2)
	sub, err := n.Subnetwork([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumStations() != 2 || sub.Station(1) != geom.Pt(2, 0) {
		t.Errorf("subnetwork = %v", sub)
	}
	if sub.Noise() != 0.1 || sub.Beta() != 2 {
		t.Error("parameters must carry over")
	}
	if _, err := n.Subnetwork(nil); err == nil {
		t.Error("empty keep list must fail")
	}
	if _, err := n.Subnetwork([]int{5}); err == nil {
		t.Error("out-of-range index must fail")
	}
}

func TestWithStationAndWithNoise(t *testing.T) {
	n := twoStation(t)
	n2, err := n.WithStation(geom.Pt(5, 5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if n2.NumStations() != 3 || n2.Power(2) != 2 {
		t.Errorf("WithStation result: %v", n2)
	}
	if n2.IsUniform() {
		t.Error("mixed powers should not be uniform")
	}
	n3, err := n.WithNoise(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n3.Noise() != 0.5 {
		t.Errorf("Noise = %v", n3.Noise())
	}
	// Original untouched.
	if n.NumStations() != 2 || n.Noise() != 0 {
		t.Error("source network mutated")
	}
}

func TestSilencingGrowsZones(t *testing.T) {
	// Figure 1(C): silencing a station can only grow the others' zones.
	n := mustNet(t, []geom.Point{geom.Pt(-3, 0), geom.Pt(3, 0), geom.Pt(0, 4)}, 0.02, 1.5)
	sub, err := n.Subnetwork([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for k := 0; k < 300; k++ {
		p := geom.Pt(rng.Float64()*12-6, rng.Float64()*12-6)
		if n.Heard(0, p) && !sub.Heard(0, p) {
			t.Fatalf("silencing station 2 shrank zone 0 at %v", p)
		}
	}
}
