package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/poly"
)

// BoundaryPoly returns the univariate polynomial H(t) whose sign along
// the parametric line p(t) = line.P + t*line.D characterizes reception
// by station k (Section 2.2 of the paper): H(t) <= 0 exactly where
// SINR(s_k, p(t)) >= beta, and the roots of H are the crossings of the
// reception-zone boundary ∂H_k.
//
// With Q_j(t) = |p(t) - s_j|^2 (a quadratic in t), the polynomial is
//
//	H(t) = beta * Σ_{i≠k} psi_i * Π_{m≠i} Q_m(t)
//	     + beta * N * Π_m Q_m(t)
//	     - psi_k * Π_{m≠k} Q_m(t),
//
// of degree 2n (2n-2 when N = 0), matching the paper's H(x, y)
// restricted to the line. (The paper's displayed polynomial writes the
// noise term as N * Π rather than beta * N * Π; multiplying the SINR
// inequality E >= beta*(I + N) through by Π_m dist^2 shows the beta
// factor is required, so we treat the omission as a typo.) Construction runs in O(n^2): the full
// product P = Π_m Q_m is accumulated once and each Π_{m≠i} is
// recovered as P / Q_i by exact-degree Euclidean division.
//
// Requires alpha = 2 and a non-degenerate direction vector.
func (n *Network) BoundaryPoly(k int, line geom.Line) (poly.Poly, error) {
	if n.alpha != 2 {
		return nil, ErrNeedAlpha2
	}
	if k < 0 || k >= len(n.stations) {
		return nil, fmt.Errorf("core: station index %d out of range [0, %d)", k, len(n.stations))
	}
	if line.D.Norm2() == 0 {
		return nil, fmt.Errorf("core: degenerate line direction")
	}

	qs := make([]poly.Poly, len(n.stations))
	for j, s := range n.stations {
		qs[j] = distanceQuadratic(line, s)
	}

	// Full product P = Π_m Q_m, degree 2n.
	full := poly.New(1)
	for _, q := range qs {
		full = full.Mul(q)
	}

	// Π_{m≠i} = P / Q_i. The division is exact in exact arithmetic; in
	// float64 we verify the remainder is negligible and fall back to a
	// direct O(n) product otherwise.
	without := func(i int) poly.Poly {
		quo, rem, ok := full.DivMod(qs[i])
		if ok && rem.MaxAbsCoeff() <= 1e-7*(1+full.MaxAbsCoeff()) {
			return quo
		}
		out := poly.New(1)
		for m, q := range qs {
			if m != i {
				out = out.Mul(q)
			}
		}
		return out
	}

	h := poly.Poly(nil)
	for i := range n.stations {
		if i == k {
			continue
		}
		h = h.Add(without(i).Scale(n.beta * n.powers[i]))
	}
	if n.noise != 0 {
		h = h.Add(full.Scale(n.beta * n.noise))
	}
	h = h.Sub(without(k).Scale(n.powers[k]))
	return h, nil
}

// distanceQuadratic returns Q(t) = |line.P + t*line.D - s|^2 as a
// quadratic polynomial in t.
func distanceQuadratic(line geom.Line, s geom.Point) poly.Poly {
	w := line.P.Sub(s)
	return poly.Quadratic(w.Norm2(), 2*line.D.Dot(w), line.D.Norm2())
}

// SegmentTest counts the distinct intersection points of the reception
// boundary ∂H_k with the closed segment seg — the primitive of
// Section 5.1 of the paper, implemented with Sturm's condition on the
// projected boundary polynomial (O(n^2) per invocation, matching the
// paper's O(m^2) with m = deg H = 2n). Endpoint crossings are detected
// by direct SINR evaluation. For a convex zone the count is 0, 1 or 2.
func (n *Network) SegmentTest(k int, seg geom.Segment) (int, error) {
	h, err := n.BoundaryPoly(k, seg.LineOf())
	if err != nil {
		return 0, err
	}
	// Certified counting over a hair-open interval below 0 so a
	// crossing exactly at the segment start is included.
	const spill = 1e-12
	return len(poly.CertifiedRealRoots(h, -spill, 1, 1e-12)), nil
}

// conditionLine reparametrizes a line for numerical stability: the new
// parameter u is centered at the projection of station k onto the line
// and scaled so the reception zone spans |u| = O(1). Degree-2n boundary
// polynomials evaluated far from their root cluster suffer catastrophic
// cancellation (coefficients reach ~1e12 even for n = 16); after this
// normalization the interesting roots sit near the origin where
// float64 evaluation is accurate, which keeps Sturm counting and root
// certification reliable up to n = 64 and beyond. The returned mapping
// converts new-parameter roots back to the caller's parameters.
func (n *Network) conditionLine(k int, line geom.Line) (geom.Line, func(float64) float64) {
	t0 := line.Project(n.stations[k])
	dn := line.D.Norm()
	// Conditioning radius: an estimate of the zone's extent, so roots
	// land at |u| = O(1) — neither crowded against the origin (r too
	// large) nor pushed into the far field (r too small), both of which
	// degrade the float64 Sturm chain.
	r := n.conditioningRadius(k)
	scale := r / dn
	conditioned := geom.Line{P: line.At(t0), D: line.D.Scale(scale)}
	back := func(u float64) float64 { return t0 + u*scale }
	return conditioned, back
}

// conditioningRadius estimates how far station k's reception zone can
// extend, combining the interference bound of Theorem 4.1
// (Delta <= kappa/(sqrt(beta)-1) for uniform beta > 1; a generous
// multiple of kappa otherwise, covering the wrap-around lobes of
// beta < 1 networks) with the noise ceiling (a unit-power signal
// cannot clear beta*N beyond 1/sqrt(beta*N) even without
// interference).
func (n *Network) conditioningRadius(k int) float64 {
	kappa := n.Kappa(k)
	var rBeta float64
	switch {
	case kappa == 0:
		rBeta = 1
	case n.beta > 1:
		rBeta = kappa / (math.Sqrt(n.beta) - 1)
	default:
		rBeta = 10 * kappa
	}
	if n.noise > 0 {
		rNoise := math.Sqrt(n.powers[k] / (n.beta * n.noise))
		if rNoise < rBeta {
			return rNoise
		}
	}
	return rBeta
}

// LineRootCount counts the distinct real roots of the boundary
// polynomial of station k along an entire line. Lemma 2.1 of the paper
// says a thick zone is convex iff every line meets its boundary at
// most twice, so a count > 2 certifies non-convexity (used for the
// Figure 5 experiment) while counts <= 2 across many lines support
// Theorem 1.
func (n *Network) LineRootCount(k int, line geom.Line) (int, error) {
	roots, err := n.lineCrossings(k, line, 1e-12)
	if err != nil {
		return 0, err
	}
	return len(roots), nil
}

// sinrBoundaryRelTol is the relative |SINR/beta - 1| tolerance for the
// physical certification of polynomial roots. Certified roots are
// refined far below this displacement, so genuine crossings pass with
// orders of magnitude to spare, while algebraic phantoms (points where
// cancellation noise zeroes the polynomial but the SINR is nowhere
// near beta) fail decisively.
const sinrBoundaryRelTol = 1e-3

// lineCrossings computes certified boundary crossings in the
// conditioned parametrization and keeps only roots that pass the
// physical test: the point's actual SINR must sit on the beta level
// set. Returned parameters are in the conditioned frame together with
// the mapping back to the caller's frame.
func (n *Network) lineCrossings(k int, line geom.Line, tolU float64) ([]float64, error) {
	if line.D.Norm2() == 0 {
		return nil, fmt.Errorf("core: degenerate line direction")
	}
	conditioned, _ := n.conditionLine(k, line)
	h, err := n.BoundaryPoly(k, conditioned)
	if err != nil {
		return nil, err
	}
	roots := poly.AllCertifiedRealRoots(h, tolU)
	kept := roots[:0]
	for _, u := range roots {
		s := n.SINR(k, conditioned.At(u))
		if s >= n.beta*(1-sinrBoundaryRelTol) && s <= n.beta*(1+sinrBoundaryRelTol) {
			kept = append(kept, u)
		}
	}
	return kept, nil
}

// LineBoundaryCrossings returns the parameters t of the distinct
// boundary crossings of ∂H_k along the line, sorted ascending, refined
// to tolerance tol (in the caller's parametrization).
func (n *Network) LineBoundaryCrossings(k int, line geom.Line, tol float64) ([]float64, error) {
	if line.D.Norm2() == 0 {
		return nil, fmt.Errorf("core: degenerate line direction")
	}
	conditioned, back := n.conditionLine(k, line)
	scale := conditioned.D.Norm() / line.D.Norm()
	roots, err := n.lineCrossings(k, line, tol/scale)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(roots))
	for i, u := range roots {
		out[i] = back(u)
	}
	return out, nil
}
