// Package core implements the paper's primary contribution: SINR
// diagrams of wireless networks and the algorithmic machinery built on
// them — reception zones and their boundary polynomials, convexity
// certification (Theorem 1), fatness bounds (Theorem 2, Theorem 4.1,
// Theorem 4.2), and the approximate point-location data structure of
// Theorem 3 (grid + Boundary Reconstruction Process + segment test +
// nearest-station pre-filter).
//
// Map to the paper (Avin, Emek, Kantor, Lotker, Peleg, Roditty,
// "SINR Diagrams: Towards Algorithmically Usable SINR Models of
// Wireless Networks", PODC 2009):
//
//   - network.go — Section 2.2: the network <S, psi, N, beta>, energy,
//     interference, SINR and the reception predicate; Lemma 2.3
//     similarity transforms.
//   - zone.go, bounds.go — Sections 2.2 and 4: reception zones H_i,
//     the delta/Delta radius bounds of Theorem 4.1 and the fatness
//     bound of Theorem 4.2.
//   - convexity.go — Theorem 1 / Section 3: Sturm-certified line-zone
//     crossing counts and midpoint convexity checks.
//   - merge.go — Lemma 3.10: merging two stations into one.
//   - linepoly.go — Section 3.2/5.1: the restricted boundary
//     polynomial of a zone along a line and its root isolation.
//   - grid.go — Section 5.1: the gamma-spaced grid and cell geometry.
//   - brp.go — Section 5.1: the Boundary Reconstruction Process that
//     traces a zone boundary cell to cell.
//   - qds.go — Section 5.1: the per-zone structure classifying cells
//     T+/T-/T? with area(H?) <= eps * area(H).
//   - pointloc.go — Theorem 3: the combined locator (kd-tree
//     nearest-station pre-filter per Observation 2.2, then one QDS
//     cell lookup, O(log n) per query).
//   - parallel.go, batch.go — the concurrency layer grown on top of
//     the paper: a worker pool for the embarrassingly parallel
//     per-station builds, sharded LocateBatch / HeardByBatch bulk
//     queries, and the ordered LocateStream pipeline. Every
//     concurrent path returns answers identical to its serial
//     counterpart.
package core
