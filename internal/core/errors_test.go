package core

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

// nonUniformNet returns a two-station network with unequal powers —
// the canonical input that every uniform-only API must reject.
func nonUniformNet(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0.01, 2,
		WithPowers([]float64{1, 3}))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestErrorPathsPropagate exercises the error branches of the zone
// measurement APIs: each wraps RadialBoundary, so a non-uniform
// network must surface ErrNeedUniform through every one of them.
func TestErrorPathsPropagate(t *testing.T) {
	n := nonUniformNet(t)
	z, err := n.Zone(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.BoundaryPoint(0, 1e-6); err == nil {
		t.Error("BoundaryPoint must propagate")
	}
	if _, _, _, _, err := z.MinMaxRadius(8, 1e-6); err == nil {
		t.Error("MinMaxRadius must propagate")
	}
	if _, err := z.MeasuredFatness(8, 1e-6); err == nil {
		t.Error("MeasuredFatness must propagate")
	}
	if _, err := z.ApproxArea(8, 1e-6); err == nil {
		t.Error("ApproxArea must propagate")
	}
	if _, err := z.ApproxPerimeter(8, 1e-6); err == nil {
		t.Error("ApproxPerimeter must propagate")
	}
	if _, err := z.EnclosingBall(8, 1e-6); err == nil {
		t.Error("EnclosingBall must propagate")
	}
	if _, err := z.ConvexHullArea(8, 1e-6); err == nil {
		t.Error("ConvexHullArea must propagate")
	}
	if _, err := z.TraceBoundary(0.1, BRPOptions{}); err == nil {
		t.Error("TraceBoundary must propagate")
	}
	if _, err := n.ImprovedBounds(0); err == nil {
		t.Error("ImprovedBounds must propagate")
	}
	if _, err := n.SampledBounds(0, 32); err == nil {
		t.Error("SampledBounds must propagate")
	}
	if _, err := n.BuildQDS(0, 0.2); err == nil {
		t.Error("BuildQDS must propagate")
	}
}

// TestPolynomialAPIErrorPaths: the polynomial-based APIs require
// alpha = 2 and valid geometry.
func TestPolynomialAPIErrorPaths(t *testing.T) {
	n4, err := NewNetwork([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0, 2, WithAlpha(3))
	if err != nil {
		t.Fatal(err)
	}
	line := geom.Line{P: geom.Pt(0, 0), D: geom.Pt(1, 0)}
	if _, err := n4.LineRootCount(0, line); err == nil {
		t.Error("LineRootCount must reject alpha != 2")
	}
	if _, err := n4.LineBoundaryCrossings(0, line, 1e-9); err == nil {
		t.Error("LineBoundaryCrossings must reject alpha != 2")
	}
	if _, err := n4.SegmentTest(0, geom.Seg(geom.Pt(0, 0), geom.Pt(1, 0))); err == nil {
		t.Error("SegmentTest must reject alpha != 2")
	}
}

func TestStringers(t *testing.T) {
	n := twoStation(t)
	s := n.String()
	for _, want := range []string{"n=2", "uniform", "beta=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("Network.String() = %q missing %q", s, want)
		}
	}
	nu := nonUniformNet(t)
	if !strings.Contains(nu.String(), "general") {
		t.Errorf("non-uniform String() = %q", nu.String())
	}
	rep := GeneralConvexityReport{Alpha: 3, MidpointsTested: 5}
	if got := rep.String(); !strings.Contains(got, "alpha=3") || !strings.Contains(got, "convex=true") {
		t.Errorf("report String() = %q", got)
	}
}

func TestNonConvexExampleIsWellFormed(t *testing.T) {
	net, p1, p2, err := NonConvexNonUniformExample()
	if err != nil {
		t.Fatal(err)
	}
	if net.NumStations() != 2 || p1 == p2 {
		t.Error("malformed witness")
	}
	// VerifyColumns error path: the point-zone fast path returns 0.
	dup := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(3, 0)}, 0, 4)
	q, err := dup.BuildQDS(0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := q.VerifyColumns()
	if err != nil || bad != 0 {
		t.Errorf("point-zone VerifyColumns = %d, %v", bad, err)
	}
}
