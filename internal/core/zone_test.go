package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestZoneHandle(t *testing.T) {
	n := twoStation(t)
	z, err := n.Zone(0)
	if err != nil {
		t.Fatal(err)
	}
	if z.Index() != 0 || z.Station() != geom.Pt(0, 0) || z.Network() != n {
		t.Error("zone handle accessors wrong")
	}
	if _, err := n.Zone(-1); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := n.Zone(2); err == nil {
		t.Error("out-of-range index must fail")
	}
}

func TestZoneContains(t *testing.T) {
	n := twoStation(t)
	z, _ := n.Zone(0)
	if !z.Contains(geom.Pt(0, 0)) || !z.Contains(geom.Pt(-0.5, 0.2)) {
		t.Error("interior points must be contained")
	}
	if z.Contains(geom.Pt(0.9, 0)) {
		t.Error("exterior point must not be contained")
	}
}

func TestIsPointZone(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0)}, 0, 2)
	z, _ := n.Zone(0)
	if !z.IsPointZone() {
		t.Error("shared location should degenerate to a point zone")
	}
	r, err := z.RadialBoundary(0, 1e-9)
	if err != nil || r != 0 {
		t.Errorf("point zone radial boundary = %v, err = %v", r, err)
	}
}

// TestRadialBoundaryApollonius checks radial probes against the exact
// Apollonius-disk geometry of the two-station network: the zone of s0
// is the disk with center (-1/3, 0) and radius 2/3.
func TestRadialBoundaryApollonius(t *testing.T) {
	n := twoStation(t)
	z, _ := n.Zone(0)
	center := geom.Pt(-1.0/3, 0)
	for _, theta := range []float64{0, math.Pi / 3, math.Pi / 2, math.Pi, 4.1} {
		r, err := z.RadialBoundary(theta, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		p := geom.PolarPoint(z.Station(), r, theta)
		if d := geom.Dist(center, p); math.Abs(d-2.0/3) > 1e-6 {
			t.Errorf("theta=%v: boundary point %v at distance %v from disk center, want 2/3", theta, p, d)
		}
	}
	// Known extreme radii: min toward s1 (theta=0) is 1/3, max away
	// (theta=pi) is 1.
	r0, err := z.RadialBoundary(0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0-1.0/3) > 1e-6 {
		t.Errorf("r(0) = %v, want 1/3", r0)
	}
	rPi, err := z.RadialBoundary(math.Pi, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rPi-1) > 1e-6 {
		t.Errorf("r(pi) = %v, want 1", rPi)
	}
}

func TestRadialBoundaryMatchesPolynomialRoots(t *testing.T) {
	// The bisection-based boundary and the Sturm-based line crossings
	// must agree along rays.
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(-1, 3), geom.Pt(1, -2)}, 0.01, 2)
	z, _ := n.Zone(0)
	for _, theta := range []float64{0.3, 1.7, 3.0, 5.2} {
		r, err := z.RadialBoundary(theta, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		ray := geom.Line{P: z.Station(), D: geom.Pt(math.Cos(theta), math.Sin(theta))}
		roots, err := n.LineBoundaryCrossings(0, ray, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		// The smallest positive root is the radial boundary.
		best := math.Inf(1)
		for _, rt := range roots {
			if rt > 1e-9 && rt < best {
				best = rt
			}
		}
		if math.IsInf(best, 1) {
			t.Fatalf("theta=%v: no positive root found (radial said %v)", theta, r)
		}
		if math.Abs(best-r) > 1e-6 {
			t.Errorf("theta=%v: radial=%v, polynomial=%v", theta, r, best)
		}
	}
}

func TestRadialBoundaryRequiresStarGuarantee(t *testing.T) {
	// Non-uniform network: radial bisection refuses.
	n, err := NewNetwork([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0, 2,
		WithPowers([]float64{1, 5}))
	if err != nil {
		t.Fatal(err)
	}
	z, _ := n.Zone(0)
	if _, err := z.RadialBoundary(0, 1e-9); err != ErrNeedUniform {
		t.Errorf("err = %v, want ErrNeedUniform", err)
	}
	// beta < 1: refuses as well.
	nb := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0.01, 0.5)
	zb, _ := nb.Zone(0)
	if _, err := zb.RadialBoundary(0, 1e-9); err == nil {
		t.Error("beta < 1 must be rejected")
	}
}

func TestRadialBoundaryUnboundedZone(t *testing.T) {
	// Trivial network: zones are half-planes; the probe away from the
	// peer must report unboundedness.
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0, 1)
	z, _ := n.Zone(0)
	if _, err := z.RadialBoundary(math.Pi, 1e-9); err == nil {
		t.Error("expected unbounded-zone error")
	}
}

func TestMinMaxRadiusAndFatness(t *testing.T) {
	n := twoStation(t)
	z, _ := n.Zone(0)
	rMin, rMax, _, _, err := z.MinMaxRadius(256, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rMin-1.0/3) > 1e-3 {
		t.Errorf("rMin = %v, want 1/3", rMin)
	}
	if math.Abs(rMax-1) > 1e-3 {
		t.Errorf("rMax = %v, want 1", rMax)
	}
	phi, err := z.MeasuredFatness(256, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Exact fatness for two stations is (sqrt(beta)+1)/(sqrt(beta)-1) = 3.
	if math.Abs(phi-3) > 1e-2 {
		t.Errorf("fatness = %v, want 3", phi)
	}
}

func TestApproxAreaPerimeterApollonius(t *testing.T) {
	n := twoStation(t)
	z, _ := n.Zone(0)
	area, err := z.ApproxArea(512, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	wantArea := math.Pi * (2.0 / 3) * (2.0 / 3)
	if math.Abs(area-wantArea) > 0.01*wantArea {
		t.Errorf("area = %v, want %v", area, wantArea)
	}
	per, err := z.ApproxPerimeter(512, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	wantPer := 2 * math.Pi * 2.0 / 3
	if math.Abs(per-wantPer) > 0.01*wantPer {
		t.Errorf("perimeter = %v, want %v", per, wantPer)
	}
}

func TestSampleBoundaryValidation(t *testing.T) {
	n := twoStation(t)
	z, _ := n.Zone(0)
	if _, err := z.SampleBoundary(2, 1e-9); err == nil {
		t.Error("fewer than 3 samples must fail")
	}
	pts, err := z.SampleBoundary(16, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("len = %d", len(pts))
	}
	// Every sample is (approximately) on the boundary.
	for _, p := range pts {
		if got := n.SINR(0, p); math.Abs(got-n.Beta()) > 1e-6*n.Beta() {
			t.Errorf("sample %v has SINR %v, want beta=%v", p, got, n.Beta())
		}
	}
}
