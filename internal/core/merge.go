package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// MergeStations realizes the Lemma 3.10 construction: given two unit
// power stations at s1 and s2 and two distinct points p1, p2, it
// returns a location s* for a single unit-power station such that
//
//	(1) E(s*, p_i) = E({s1, s2}, p_i) for i = 1, 2, and
//	(2) E(s*, q) >= E({s1, s2}, q) for every q on the segment p1 p2.
//
// s* is an intersection point of the two circles of radii
// rho_i = 1/sqrt(E({s1,s2}, p_i)) centered at p_i. Proposition 3.11
// guarantees the circles intersect whenever some station s0 satisfies
// E(s0, p_i) >= E({s1,s2}, p_i) at both points; if they fail to
// intersect numerically an error is returned.
func MergeStations(s1, s2, p1, p2 geom.Point) (geom.Point, error) {
	if geom.ApproxEqual(p1, p2, geom.Eps) {
		return geom.Point{}, fmt.Errorf("core: merge needs two distinct anchor points")
	}
	e1 := pairEnergy(s1, s2, p1)
	e2 := pairEnergy(s1, s2, p2)
	if math.IsInf(e1, 1) || math.IsInf(e2, 1) {
		return geom.Point{}, fmt.Errorf("core: anchor point coincides with a station")
	}
	b1 := geom.NewBall(p1, 1/math.Sqrt(e1))
	b2 := geom.NewBall(p2, 1/math.Sqrt(e2))
	pts := geom.IntersectCircles(b1, b2)
	if len(pts) == 0 {
		return geom.Point{}, fmt.Errorf("core: energy circles do not intersect (Prop. 3.11 precondition violated)")
	}
	return pts[0], nil
}

// pairEnergy returns E({s1, s2}, p) for unit powers and alpha = 2.
func pairEnergy(s1, s2, p geom.Point) float64 {
	d1, d2 := geom.Dist2(s1, p), geom.Dist2(s2, p)
	if d1 == 0 || d2 == 0 {
		return math.Inf(1)
	}
	return 1/d1 + 1/d2
}

// RemoveNoise realizes the Section 3.4 reduction: given a uniform
// power network with background noise N > 0 and two points p1, p2
// heard by station k, it returns an (n+1)-station uniform network with
// no noise in which a new unit-power station s_n placed on the
// intersection of the circles of radius 1/sqrt(N) around p1 and p2
// replaces the noise. The construction guarantees
//
//	E(s_n, p_i) = N  for i = 1, 2, and
//	E(s_n, q)  >= N  for all q on p1 p2,
//
// so SINR values at p1, p2 are preserved and SINR along the segment
// only drops — exactly what the convexity induction needs.
func (n *Network) RemoveNoise(k int, p1, p2 geom.Point) (*Network, geom.Point, error) {
	if !n.uniform {
		return nil, geom.Point{}, ErrNeedUniform
	}
	if n.noise <= 0 {
		return nil, geom.Point{}, fmt.Errorf("core: network has no background noise to remove")
	}
	if !n.Heard(k, p1) || !n.Heard(k, p2) {
		return nil, geom.Point{}, fmt.Errorf("core: both anchor points must be heard by station %d", k)
	}
	r := 1 / math.Sqrt(n.noise)
	var pts []geom.Point
	if geom.ApproxEqual(p1, p2, geom.Eps) {
		// Coincident anchors: any point on the radius-r circle works.
		pts = []geom.Point{p1.Add(geom.Pt(r, 0))}
	} else {
		pts = geom.IntersectCircles(geom.NewBall(p1, r), geom.NewBall(p2, r))
	}
	if len(pts) == 0 {
		return nil, geom.Point{}, fmt.Errorf("core: noise circles do not intersect (points too far apart: dist=%v >= 2/sqrt(N)=%v)",
			geom.Dist(p1, p2), 2*r)
	}
	sn := pts[0]
	out, err := n.WithStation(sn, n.powers[0])
	if err != nil {
		return nil, geom.Point{}, err
	}
	out, err = out.WithNoise(0)
	if err != nil {
		return nil, geom.Point{}, err
	}
	return out, sn, nil
}
