package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// BRPOptions tunes the Boundary Reconstruction Process.
type BRPOptions struct {
	// MaxChord is the maximum allowed distance between consecutive
	// boundary samples; the trace subdivides until consecutive samples
	// are at most this far apart. Zero selects gamma/2.
	MaxChord float64
	// MaxDeviation is the maximum allowed sagitta (deviation of the
	// true boundary midpoint from the chord between samples); the trace
	// subdivides while the midpoint test exceeds it. Zero selects
	// gamma/4.
	MaxDeviation float64
	// InitialRays is the number of evenly spaced starting angles
	// (minimum 16; default 64).
	InitialRays int
	// Tol is the radial bisection tolerance (default gamma/16).
	Tol float64
}

// maxBRPDepth bounds the adaptive subdivision per angular wedge.
const maxBRPDepth = 40

// TraceBoundary runs the Boundary Reconstruction Process of
// Section 5.1 in its star-shape form: because the reception zone is
// star-shaped with respect to its station (Lemma 3.1) the boundary is
// the continuous radial graph r(theta), which the trace walks with
// adaptive angular subdivision until both (a) consecutive samples are
// within MaxChord and (b) the midpoint of each wedge deviates from the
// chord by at most MaxDeviation. The returned samples are in
// counterclockwise order, one full encirclement of ∂H_k, exactly the
// traversal the paper's BRP performs at 9-cell granularity.
func (z *Zone) TraceBoundary(gamma float64, opts BRPOptions) ([]geom.Point, error) {
	if gamma <= 0 {
		return nil, fmt.Errorf("core: gamma must be positive")
	}
	if opts.MaxChord <= 0 {
		opts.MaxChord = gamma / 2
	}
	if opts.MaxDeviation <= 0 {
		opts.MaxDeviation = gamma / 4
	}
	if opts.InitialRays < 16 {
		opts.InitialRays = 64
	}
	if opts.Tol <= 0 {
		opts.Tol = gamma / 16
	}

	type sample struct {
		theta float64
		r     float64
		p     geom.Point
	}
	// probe locates the boundary along theta; hint (the radius at a
	// nearby angle) warm-starts the bisection bracket.
	probe := func(theta, hint float64) (sample, error) {
		r, err := z.radialBoundaryHinted(theta, opts.Tol, hint)
		if err != nil {
			return sample{}, err
		}
		return sample{theta: theta, r: r, p: geom.PolarPoint(z.Station(), r, theta)}, nil
	}

	initial := make([]sample, opts.InitialRays+1)
	hint := 0.0
	for i := 0; i <= opts.InitialRays; i++ {
		theta := 2 * math.Pi * float64(i) / float64(opts.InitialRays)
		s, err := probe(theta, hint)
		if err != nil {
			return nil, err
		}
		initial[i] = s
		hint = s.r
	}

	var out []geom.Point
	var refine func(a, b sample, depth int) error
	refine = func(a, b sample, depth int) error {
		mid, err := probe((a.theta+b.theta)/2, (a.r+b.r)/2)
		if err != nil {
			return err
		}
		chordOK := geom.Dist(a.p, b.p) <= opts.MaxChord
		devOK := geom.Seg(a.p, b.p).DistTo(mid.p) <= opts.MaxDeviation
		if (chordOK && devOK) || depth >= maxBRPDepth {
			out = append(out, a.p, mid.p)
			return nil
		}
		if err := refine(a, mid, depth+1); err != nil {
			return err
		}
		return refine(mid, b, depth+1)
	}
	for i := 0; i < opts.InitialRays; i++ {
		if err := refine(initial[i], initial[i+1], 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}
