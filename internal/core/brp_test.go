package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestTraceBoundaryValidation(t *testing.T) {
	n := twoStation(t)
	z, _ := n.Zone(0)
	if _, err := z.TraceBoundary(0, BRPOptions{}); err == nil {
		t.Error("gamma = 0 must fail")
	}
	if _, err := z.TraceBoundary(-1, BRPOptions{}); err == nil {
		t.Error("negative gamma must fail")
	}
}

// TestTraceBoundaryOnApollonius: every traced point lies on the known
// circle, consecutive samples respect the chord bound, and the trace
// closes a full loop.
func TestTraceBoundaryOnApollonius(t *testing.T) {
	n := twoStation(t)
	z, _ := n.Zone(0)
	const gamma = 0.02
	pts, err := z.TraceBoundary(gamma, BRPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 100 {
		t.Fatalf("only %d samples", len(pts))
	}
	center := geom.Pt(-1.0/3, 0)
	for i, p := range pts {
		if d := geom.Dist(center, p); math.Abs(d-2.0/3) > 1e-2 {
			t.Fatalf("sample %d at %v is off the Apollonius circle (dist %v)", i, p, d)
		}
		if i > 0 {
			if c := geom.Dist(pts[i-1], p); c > gamma/2+1e-9 {
				t.Fatalf("chord %d-%d = %v exceeds gamma/2 = %v", i-1, i, c, gamma/2)
			}
		}
	}
	// Full encirclement: the angular span of samples around the
	// station covers (almost) 2 pi.
	var minA, maxA = math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		a := p.Sub(z.Station()).Angle()
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	if maxA-minA < 2*math.Pi*0.95 {
		t.Errorf("angular span = %v, want ~2pi", maxA-minA)
	}
}

// TestTraceBoundaryDeviationBound: the adaptive subdivision keeps the
// midpoint sagitta below the configured bound.
func TestTraceBoundaryDeviationBound(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(1.3, 0.4), geom.Pt(-0.9, 1.2)}, 0.02, 2.5)
	z, _ := n.Zone(0)
	const gamma = 0.01
	pts, err := z.TraceBoundary(gamma, BRPOptions{MaxChord: gamma / 2, MaxDeviation: gamma / 4})
	if err != nil {
		t.Fatal(err)
	}
	// Spot check: boundary membership of every 10th sample.
	for i := 0; i < len(pts); i += 10 {
		s := n.SINR(0, pts[i])
		if math.Abs(s-n.Beta()) > 0.02*n.Beta() {
			t.Fatalf("sample %d: SINR %v far from beta %v", i, s, n.Beta())
		}
	}
}

func TestTraceBoundaryCellCoverage(t *testing.T) {
	// The union of traced-sample 9-cells must cover every boundary
	// crossing of a probe set of vertical lines (the same guarantee
	// VerifyColumns checks post-build, here asserted pre-inflation+1).
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(-1, -1.5)}, 0.01, 3)
	z, _ := n.Zone(0)
	const gamma = 0.01
	grid, err := NewGrid(n.Station(0), gamma)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := z.TraceBoundary(gamma, BRPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	covered := map[Cell]bool{}
	for _, p := range pts {
		for _, c := range grid.NineCell(grid.CellOf(p)) {
			covered[c] = true
		}
	}
	for _, dx := range []float64{-0.2, -0.05, 0.03, 0.11, 0.27} {
		line := geom.Line{P: geom.Pt(dx, 0), D: geom.Pt(0, 1)}
		roots, err := n.LineBoundaryCrossings(0, line, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range roots {
			p := line.At(r)
			if geom.Dist(p, n.Station(0)) > 2 { // other lobe guard
				continue
			}
			if !covered[grid.CellOf(p)] {
				t.Errorf("boundary crossing %v not covered by the trace ring", p)
			}
		}
	}
}

func TestEnclosingBallConsistent(t *testing.T) {
	n := twoStation(t)
	z, _ := n.Zone(0)
	ball, err := z.EnclosingBall(256, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	// The zone is the disk center (-1/3, 0) radius 2/3: its MEB is
	// itself.
	if !geom.ApproxEqual(ball.C, geom.Pt(-1.0/3, 0), 1e-3) || math.Abs(ball.R-2.0/3) > 1e-3 {
		t.Errorf("enclosing ball = %v, want disk(-1/3, 0; 2/3)", ball)
	}
	// Circumradius <= Delta(s_0, .) (which is 1 here): the intrinsic
	// measure never exceeds the station-anchored one.
	if ball.R > 1+1e-6 {
		t.Errorf("circumradius %v exceeds anchored Delta", ball.R)
	}
}

func TestConvexHullAreaMatchesApproxArea(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0.5), geom.Pt(-1, 1.5)}, 0.02, 2.5)
	z, _ := n.Zone(0)
	a1, err := z.ApproxArea(256, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := z.ConvexHullArea(256, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1-a2) > 0.02*a1 {
		t.Errorf("areas disagree: polygon %v vs hull %v", a1, a2)
	}
}
