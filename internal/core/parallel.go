package core

import (
	"repro/internal/par"
)

// DefaultWorkers returns the worker count used when a BuildOptions or
// BatchOptions value leaves Workers at zero: runtime.GOMAXPROCS(0),
// i.e. one worker per schedulable CPU.
func DefaultWorkers() int { return par.Default() }

// BuildOptions tunes locator construction.
type BuildOptions struct {
	// Workers is the number of goroutines used to build the
	// per-station QDS structures. Zero means DefaultWorkers(); one
	// forces the serial build. The result is identical for every
	// setting — per-station builds are independent and each lands in
	// its own slot of the locator.
	Workers int

	// NoSpatialIndex skips building the sharded spatial index over
	// the per-station cover boxes. The zero value builds it (the
	// index is on by default): queries are answer-identical with and
	// without it, so the only reason to disable it is benchmarking
	// the pre-index path.
	NoSpatialIndex bool
}

// BatchOptions tunes batch query execution.
type BatchOptions struct {
	// Workers is the number of goroutines the query slice is sharded
	// over. Zero means DefaultWorkers(); one forces the serial path.
	Workers int
}

// parallelForErr runs fn(i) for every i in [0, n) across the given
// number of workers and returns the error of the lowest index that
// failed — the same error a serial left-to-right loop would surface,
// so the parallel and serial builds are indistinguishable to callers
// even on failure.
func parallelForErr(n, workers int, fn func(i int) error) error {
	if par.Norm(workers, n) == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	par.Chunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = fn(i)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
