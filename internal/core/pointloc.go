package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/shardindex"
)

// LocationKind is the answer category of an approximate point-location
// query (Theorem 3): the query point is certified inside some H_i+,
// certified outside every zone (H-), or in an uncertainty ring H_i?.
type LocationKind int

// Query answer categories.
const (
	NoReception LocationKind = iota // p in H-: no station is heard
	Reception                       // p in H_i+: station i is heard
	Uncertain                       // p in H_i?: within eps-ring of zone i
)

// String implements fmt.Stringer.
func (k LocationKind) String() string {
	switch k {
	case NoReception:
		return "H-"
	case Reception:
		return "H+"
	case Uncertain:
		return "H?"
	default:
		return fmt.Sprintf("LocationKind(%d)", int(k))
	}
}

// Location is the result of a point-location query.
type Location struct {
	Kind    LocationKind
	Station int // meaningful for Reception and Uncertain
}

// Locator is the Theorem 3 data structure DS: a nearest-station index
// (Observation 2.2 reduces the candidate set to the Voronoi owner)
// combined with one QDS per station. Total size O(n * eps^-1), built
// in O(n^3 * eps^-1), answering queries in O(log n).
type Locator struct {
	net  *Network
	tree *kdtree.Tree
	qds  []*QDS
	eps  float64
	// sx is the sharded spatial index over the per-station cover
	// boxes (QDS.CoverBox): one grid-cell lookup bounds the candidate
	// stations whose zones can contain a query point, and an empty
	// answer certifies H- without touching the kd-tree. nil when the
	// build disabled it (BuildOptions.NoSpatialIndex).
	sx *shardindex.Index
}

// BuildLocator constructs the combined point-location structure with
// performance parameter eps for every station of the network. The
// network must satisfy the Theorem 3 preconditions (uniform power,
// alpha = 2, beta > 1).
//
// The per-station QDS constructions — the O(n^3/eps) bulk of the
// work — are fanned out over DefaultWorkers() goroutines; use
// BuildLocatorOpts to pick the worker count explicitly. The result is
// identical to the serial build for any worker count.
func (n *Network) BuildLocator(eps float64) (*Locator, error) {
	return n.BuildLocatorOpts(eps, BuildOptions{})
}

// BuildLocatorOpts is BuildLocator with explicit build options.
// Workers: 1 reproduces the seed's serial build exactly;
// Workers: 0 means DefaultWorkers().
func (n *Network) BuildLocatorOpts(eps float64, opt BuildOptions) (*Locator, error) {
	loc := &Locator{
		net:  n,
		tree: kdtree.New(n.stations),
		qds:  make([]*QDS, len(n.stations)),
		eps:  eps,
	}
	err := parallelForErr(len(n.stations), opt.Workers, func(i int) error {
		q, err := n.BuildQDS(i, eps)
		if err != nil {
			return fmt.Errorf("core: building QDS for station %d: %w", i, err)
		}
		loc.qds[i] = q
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !opt.NoSpatialIndex {
		boxes := make([]shardindex.Box, len(loc.qds))
		for i, q := range loc.qds {
			b := q.CoverBox()
			boxes[i] = shardindex.Box{MinX: b.Min.X, MinY: b.Min.Y, MaxX: b.Max.X, MaxY: b.Max.Y}
		}
		loc.sx = shardindex.Build(boxes)
	}
	return loc, nil
}

// Eps returns the performance parameter.
func (l *Locator) Eps() float64 { return l.eps }

// QDSFor returns the per-station structure (for inspection and tests).
func (l *Locator) QDSFor(i int) *QDS { return l.qds[i] }

// NumUncertainCells sums |T?| over all stations — the O(n/eps) size
// driver of the combined structure.
func (l *Locator) NumUncertainCells() int {
	total := 0
	for _, q := range l.qds {
		total += q.NumUncertainCells()
	}
	return total
}

// Locate answers an approximate point-location query. With the
// spatial index (the default) the path is: one grid-cell lookup over
// the per-station cover boxes — an empty candidate set certifies H-
// immediately, which is the common case for traffic over the mostly
// empty plane — then the kd-tree nearest-station check as the
// residual filter (Observation 2.2: only the nearest station can be
// heard at p) and an O(1) cell classification in that station's QDS.
// Without the index it is the kd-tree plus classification alone.
// Answers are identical either way, and identical to LocateScan's
// full scan over every station. The hot path performs no allocations.
//
//sinr:hotpath
func (l *Locator) Locate(p geom.Point) Location {
	if l.sx != nil {
		if !l.sx.Covers(p.X, p.Y) {
			// No station's cover box contains p, so every QDS would
			// classify it T-: certified H- in one cell lookup.
			return Location{Kind: NoReception}
		}
		idx, _, ok := l.tree.Nearest(p)
		if !ok {
			return Location{Kind: NoReception}
		}
		if !l.sx.Contains(int32(idx), p.X, p.Y) {
			// p is in some station's box, but not the nearest's: its
			// QDS would classify p T- (the box covers every non-T-
			// cell), and by Observation 2.2 nobody else can be heard.
			return Location{Kind: NoReception}
		}
		return l.classify(idx, p)
	}
	idx, _, ok := l.tree.Nearest(p)
	if !ok {
		return Location{Kind: NoReception}
	}
	return l.classify(idx, p)
}

// classify maps station idx's QDS cell answer for p to a Location.
func (l *Locator) classify(idx int, p geom.Point) Location {
	switch l.qds[idx].Classify(p) {
	case TPlus:
		return Location{Kind: Reception, Station: idx}
	case TQuestion:
		return Location{Kind: Uncertain, Station: idx}
	default:
		return Location{Kind: NoReception}
	}
}

// LocateScan answers the same query as Locate by scanning every
// station: a linear nearest-station pass (ties broken toward the
// lowest index, the kd-tree's convention) followed by that station's
// QDS classification. It is the O(n) pre-index baseline kept for
// benchmarking (experiment E18) and for the property tests that pin
// Locate's answers to it point-for-point.
//
//sinr:hotpath
func (l *Locator) LocateScan(p geom.Point) Location {
	if len(l.net.stations) == 0 {
		return Location{Kind: NoReception}
	}
	best, bestD2 := 0, geom.Dist2(l.net.stations[0], p)
	for i := 1; i < len(l.net.stations); i++ {
		if d2 := geom.Dist2(l.net.stations[i], p); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return l.classify(best, p)
}

// LocateExact resolves a query exactly: it uses the fast path of
// Locate and falls back to one direct SINR evaluation (O(n)) only for
// points landing in an uncertainty ring. This is the natural way
// downstream users consume the structure: O(log n) for all but an
// eps-fraction of the plane.
func (l *Locator) LocateExact(p geom.Point) Location {
	return l.ResolveUncertain(l.Locate(p), p)
}

// ResolveUncertain turns an approximate answer for p into an exact
// one: an Uncertain (H?) answer is settled by one direct SINR
// evaluation of the candidate station, while H+ and H- answers pass
// through unchanged. It is the single exact-fallback code path behind
// LocateExact, Locator.HeardBy and every exact-fallback resolver —
// any H? handling outside it is a bug.
func (l *Locator) ResolveUncertain(loc Location, p geom.Point) Location {
	if loc.Kind != Uncertain {
		return loc
	}
	if l.net.Heard(loc.Station, p) {
		return Location{Kind: Reception, Station: loc.Station}
	}
	return Location{Kind: NoReception}
}

// SpatialIndex returns the sharded spatial index of the locator, or
// nil when the build disabled it (BuildOptions.NoSpatialIndex).
func (l *Locator) SpatialIndex() *shardindex.Index { return l.sx }

// Network returns the network the locator was built for.
func (l *Locator) Network() *Network { return l.net }

// NumStations returns the station count of the underlying network.
func (l *Locator) NumStations() int { return len(l.net.stations) }

// Station returns the location of station i of the underlying network.
func (l *Locator) Station(i int) geom.Point { return l.net.stations[i] }

// HeardBy reports the station heard at p via the Theorem 3 fast path,
// falling back to one exact SINR evaluation only for points landing in
// an uncertainty ring (LocateExact). A Locator therefore satisfies the
// same reception-model shape as Network (NumStations/HeardBy, e.g.
// raster.Model) and can stand in for it when rasterizing figures.
func (l *Locator) HeardBy(p geom.Point) (int, bool) {
	loc := l.LocateExact(p)
	if loc.Kind != Reception {
		return 0, false
	}
	return loc.Station, true
}

// NaiveLocate is the O(n^2)-flavored baseline the paper mentions:
// evaluate the SINR of every station at p (each evaluation is O(n))
// and report the heard station, if any.
func (n *Network) NaiveLocate(p geom.Point) Location {
	if i, ok := n.HeardBy(p); ok {
		return Location{Kind: Reception, Station: i}
	}
	return Location{Kind: NoReception}
}

// VoronoiLocate is the O(n) baseline: identify the unique candidate
// station via a nearest-station query (Observation 2.2), then one
// direct SINR evaluation. The tree parameter lets callers amortize the
// index; pass nil to build a throwaway index (turning the query into
// the O(n log n)-preprocessed, O(n)-query algorithm of the paper's
// introduction).
func (n *Network) VoronoiLocate(p geom.Point, tree *kdtree.Tree) Location {
	if tree == nil {
		tree = kdtree.New(n.stations)
	}
	idx, _, ok := tree.Nearest(p)
	if !ok {
		return Location{Kind: NoReception}
	}
	if n.Heard(idx, p) {
		return Location{Kind: Reception, Station: idx}
	}
	return Location{Kind: NoReception}
}
