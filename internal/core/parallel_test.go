package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// testNetwork builds a deterministic n-station uniform network on the
// seeded workload generator (the same recipe as the benchmarks).
func testNetwork(t *testing.T, seed int64, n int) *Network {
	t.Helper()
	gen := workload.NewGenerator(seed)
	pts, err := gen.UniformSeparated(n, geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5)), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewUniform(pts, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testQueries draws a deterministic query set covering the deployment
// box with margin, so answers include H+, H- and H? cases.
func testQueries(n int) []geom.Point {
	gen := workload.NewGenerator(171)
	return gen.QueryPoints(n, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
}

// TestParallelBuildDeterminism is the acceptance gate of the
// concurrency layer: on a seeded 50-station workload the parallel
// build must answer every query byte-identically to the serial build,
// and the structures must agree cell-count for cell-count.
func TestParallelBuildDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("50-station build in short mode")
	}
	net := testNetwork(t, 42, 50)
	serial, err := net.BuildLocatorOpts(0.5, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := net.BuildLocatorOpts(0.5, BuildOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.NumUncertainCells(), parallel.NumUncertainCells(); s != p {
		t.Fatalf("|T?| diverged: serial %d, parallel %d", s, p)
	}
	for i := 0; i < net.NumStations(); i++ {
		if s, p := serial.QDSFor(i).NumUncertainCells(), parallel.QDSFor(i).NumUncertainCells(); s != p {
			t.Fatalf("station %d |T?| diverged: serial %d, parallel %d", i, s, p)
		}
	}
	for _, q := range testQueries(4000) {
		if s, p := serial.Locate(q), parallel.Locate(q); s != p {
			t.Fatalf("Locate(%v) diverged: serial %v, parallel %v", q, s, p)
		}
	}
}

// TestWorkersOneFallback pins the Workers: 1 contract on every knob:
// the serial paths must be taken (no goroutines needed) and produce
// the same answers as the defaults.
func TestWorkersOneFallback(t *testing.T) {
	net := testNetwork(t, 7, 12)
	loc, err := net.BuildLocatorOpts(0.4, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := net.BuildLocator(0.4)
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(600)
	serialBatch := loc.LocateBatchOpts(qs, BatchOptions{Workers: 1})
	defBatch := def.LocateBatch(qs)
	for i := range qs {
		if serialBatch[i] != defBatch[i] {
			t.Fatalf("query %d: Workers:1 %v vs default %v", i, serialBatch[i], defBatch[i])
		}
		if serialBatch[i] != loc.Locate(qs[i]) {
			t.Fatalf("query %d: batch %v vs single-point %v", i, serialBatch[i], loc.Locate(qs[i]))
		}
	}
	hb1 := net.HeardByBatchOpts(qs, BatchOptions{Workers: 1})
	hbN := net.HeardByBatch(qs)
	for i := range qs {
		if hb1[i] != hbN[i] {
			t.Fatalf("HeardByBatch query %d: Workers:1 %d vs default %d", i, hb1[i], hbN[i])
		}
		idx, ok := net.HeardBy(qs[i])
		want := NoStationHeard
		if ok {
			want = idx
		}
		if hb1[i] != want {
			t.Fatalf("HeardByBatch query %d: got %d, HeardBy says %d", i, hb1[i], want)
		}
	}
}

// TestLocateBatchConcurrentCallers hammers one shared locator from
// many goroutines, each running parallel batches — the -race target
// for the query path.
func TestLocateBatchConcurrentCallers(t *testing.T) {
	net := testNetwork(t, 13, 10)
	loc, err := net.BuildLocator(0.4)
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(500)
	want := loc.LocateBatchOpts(qs, BatchOptions{Workers: 1})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				got := loc.LocateBatchOpts(qs, BatchOptions{Workers: 4})
				for i := range qs {
					if got[i] != want[i] {
						errs <- errors.New("concurrent batch answer diverged")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestLocateExactBatch checks the exact batch resolves every
// uncertainty ring: answers match the point-by-point LocateExact and
// never report H?.
func TestLocateExactBatch(t *testing.T) {
	net := testNetwork(t, 99, 8)
	loc, err := net.BuildLocator(0.4)
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(800)
	got := loc.LocateExactBatch(qs)
	for i, q := range qs {
		if got[i].Kind == Uncertain {
			t.Fatalf("LocateExactBatch left query %d uncertain", i)
		}
		if want := loc.LocateExact(q); got[i] != want {
			t.Fatalf("query %d: batch %v vs single-point %v", i, got[i], want)
		}
	}
}

// TestLocateStreamOrder feeds a stream and checks answers come back in
// input order, one per point, equal to the batch answers.
func TestLocateStreamOrder(t *testing.T) {
	net := testNetwork(t, 5, 8)
	loc, err := net.BuildLocator(0.4)
	if err != nil {
		t.Fatal(err)
	}
	qs := testQueries(1500) // > streamChunk, forcing multiple jobs
	want := loc.LocateBatchOpts(qs, BatchOptions{Workers: 1})

	in := make(chan geom.Point)
	out := loc.LocateStreamOpts(context.Background(), in, BatchOptions{Workers: 4})
	go func() {
		for _, q := range qs {
			in <- q
		}
		close(in)
	}()
	i := 0
	for got := range out {
		if i >= len(qs) {
			t.Fatalf("stream produced more than %d answers", len(qs))
		}
		if got != want[i] {
			t.Fatalf("stream answer %d: got %v, want %v", i, got, want[i])
		}
		i++
	}
	if i != len(qs) {
		t.Fatalf("stream produced %d answers, want %d", i, len(qs))
	}
}

// TestLocateStreamCancel cancels mid-stream and checks the output
// channel closes rather than wedging the pipeline.
func TestLocateStreamCancel(t *testing.T) {
	net := testNetwork(t, 5, 8)
	loc, err := net.BuildLocator(0.4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan geom.Point)
	out := loc.LocateStreamOpts(ctx, in, BatchOptions{Workers: 2})
	qs := testQueries(100)
	go func() {
		for _, q := range qs {
			select {
			case in <- q:
			case <-ctx.Done():
				return
			}
		}
	}()
	n := 0
	for range out {
		n++
		if n == 10 {
			cancel()
		}
	}
	if n < 10 {
		t.Fatalf("stream closed after %d answers, before cancellation point", n)
	}
}

// TestParallelBuildErrorMatchesSerial checks the failure contract: the
// parallel build surfaces the same lowest-index error a serial
// left-to-right build would.
func TestParallelBuildErrorMatchesSerial(t *testing.T) {
	// beta <= 1 fails QDS validation for every station; both builds
	// must surface the station-0 error.
	net := testNetwork(t, 3, 6)
	nets, err := NewUniform(net.Stations(), 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, serialErr := nets.BuildLocatorOpts(0.4, BuildOptions{Workers: 1})
	_, parErr := nets.BuildLocatorOpts(0.4, BuildOptions{Workers: 4})
	if serialErr == nil || parErr == nil {
		t.Fatal("beta <= 1 build must fail")
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error diverged: serial %q, parallel %q", serialErr, parErr)
	}
	if !errors.Is(parErr, ErrNeedBetaGT1) {
		t.Fatalf("parallel error lost its cause: %v", parErr)
	}
}
