package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

func TestLocationKindString(t *testing.T) {
	if NoReception.String() != "H-" || Reception.String() != "H+" || Uncertain.String() != "H?" {
		t.Error("kind strings wrong")
	}
	if LocationKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestBuildLocatorAndAccessors(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(0, 3)}, 0.01, 3)
	loc, err := n.BuildLocator(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Eps() != 0.2 {
		t.Errorf("Eps = %v", loc.Eps())
	}
	if loc.NumUncertainCells() <= 0 {
		t.Error("no uncertain cells across stations")
	}
	for i := 0; i < n.NumStations(); i++ {
		if loc.QDSFor(i) == nil {
			t.Errorf("missing QDS for station %d", i)
		}
	}
}

func TestBuildLocatorPropagatesErrors(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0, 1) // beta = 1
	if _, err := n.BuildLocator(0.2); err == nil {
		t.Error("beta = 1 must fail")
	}
}

// TestLocatorSoundness: Locate answers must be consistent with ground
// truth — H+ implies heard by that station, H- implies heard by nobody.
func TestLocatorSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	n := mustNet(t, []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 1), geom.Pt(-2, 3), geom.Pt(1, -3.5), geom.Pt(-3, -2),
	}, 0.01, 2.5)
	loc, err := n.BuildLocator(0.15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		p := geom.Pt(rng.Float64()*14-7, rng.Float64()*14-7)
		got := loc.Locate(p)
		truth, heard := n.HeardBy(p)
		switch got.Kind {
		case Reception:
			if !heard || truth != got.Station {
				t.Fatalf("Locate(%v) = H+ station %d, truth: heard=%v station=%d",
					p, got.Station, heard, truth)
			}
		case NoReception:
			if heard {
				t.Fatalf("Locate(%v) = H-, but station %d is heard", p, truth)
			}
		case Uncertain:
			// Allowed either way; must at least be the Voronoi candidate.
			if heard && truth != got.Station {
				t.Fatalf("Locate(%v) = H? station %d, but station %d is heard",
					p, got.Station, truth)
			}
		}
	}
}

// TestLocateExactMatchesNaive: resolving the uncertain ring with one
// SINR evaluation must reproduce the naive answer everywhere.
func TestLocateExactMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	n := mustNet(t, []geom.Point{
		geom.Pt(0, 0), geom.Pt(3, 2), geom.Pt(-2, 2), geom.Pt(0.5, -3),
	}, 0.02, 3)
	loc, err := n.BuildLocator(0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		p := geom.Pt(rng.Float64()*12-6, rng.Float64()*12-6)
		got := loc.LocateExact(p)
		want := n.NaiveLocate(p)
		if got.Kind != want.Kind || (got.Kind == Reception && got.Station != want.Station) {
			t.Fatalf("LocateExact(%v) = %+v, naive = %+v", p, got, want)
		}
	}
}

func TestNaiveLocate(t *testing.T) {
	n := twoStation(t)
	if got := n.NaiveLocate(geom.Pt(0, 0)); got.Kind != Reception || got.Station != 0 {
		t.Errorf("at s0: %+v", got)
	}
	if got := n.NaiveLocate(geom.Pt(0.5, 0)); got.Kind != NoReception {
		t.Errorf("between stations: %+v", got)
	}
	if got := n.NaiveLocate(geom.Pt(1.1, 0)); got.Kind != Reception || got.Station != 1 {
		t.Errorf("near s1: %+v", got)
	}
}

func TestVoronoiLocateAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	pts := make([]geom.Point, 12)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
	}
	n := mustNet(t, pts, 0.01, 2)
	tree := kdtree.New(pts)
	for i := 0; i < 2000; i++ {
		p := geom.Pt(rng.Float64()*12-6, rng.Float64()*12-6)
		got := n.VoronoiLocate(p, tree)
		want := n.NaiveLocate(p)
		if got.Kind != want.Kind || (got.Kind == Reception && got.Station != want.Station) {
			t.Fatalf("VoronoiLocate(%v) = %+v, naive = %+v", p, got, want)
		}
	}
	// nil tree builds a throwaway index and still answers correctly.
	got := n.VoronoiLocate(pts[0], nil)
	if got.Kind != Reception || got.Station != 0 {
		t.Errorf("nil-tree locate at s0 = %+v", got)
	}
}

// TestObservation22 verifies Observation 2.2 directly: every in-zone
// point is strictly closer to its station than to any other station.
func TestObservation22(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 10; trial++ {
		pts := make([]geom.Point, 2+rng.Intn(6))
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		n := mustNet(t, pts, rng.Float64()*0.05, 1+rng.Float64()*4)
		if n.IsTrivial() {
			continue
		}
		for i := 0; i < 500; i++ {
			p := geom.Pt(rng.Float64()*12-6, rng.Float64()*12-6)
			k, ok := n.HeardBy(p)
			if !ok {
				continue
			}
			dk := geom.Dist2(n.Station(k), p)
			for j := 0; j < n.NumStations(); j++ {
				if j != k && geom.Dist2(n.Station(j), p) <= dk-1e-12 {
					t.Fatalf("trial %d: point %v heard by %d but closer to %d", trial, p, k, j)
				}
			}
		}
	}
}

// TestUncertainFractionSmall: the fraction of queries answered H?
// should be small (it is bounded by the ring area over the sampling
// window area).
func TestUncertainFractionSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(0, 4), geom.Pt(4, 4)}, 0.01, 3)
	loc, err := n.BuildLocator(0.1)
	if err != nil {
		t.Fatal(err)
	}
	uncertain := 0
	const total = 20000
	for i := 0; i < total; i++ {
		p := geom.Pt(rng.Float64()*8-2, rng.Float64()*8-2)
		if loc.Locate(p).Kind == Uncertain {
			uncertain++
		}
	}
	// Rings total well under 5% of the 8x8 window for eps=0.1 here.
	if frac := float64(uncertain) / total; frac > 0.05 {
		t.Errorf("uncertain fraction = %v", frac)
	}
}
