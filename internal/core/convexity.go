package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/poly"
)

// ConvexityReport summarizes a convexity certification run for one
// reception zone.
type ConvexityReport struct {
	LinesTested        int // random lines submitted to the Sturm root count
	MaxLineCrossings   int // max distinct boundary crossings over all lines
	MidpointsTested    int // membership midpoint checks performed
	MidpointViolations int // midpoints outside the zone despite endpoints inside
}

// Convex reports whether no evidence of non-convexity was found:
// every line met the boundary at most twice (Lemma 2.1) and every
// midpoint of in-zone pairs stayed in the zone.
func (r ConvexityReport) Convex() bool {
	return r.MaxLineCrossings <= 2 && r.MidpointViolations == 0
}

// String implements fmt.Stringer.
func (r ConvexityReport) String() string {
	return fmt.Sprintf("lines=%d maxCrossings=%d midpoints=%d violations=%d convex=%v",
		r.LinesTested, r.MaxLineCrossings, r.MidpointsTested, r.MidpointViolations, r.Convex())
}

// CheckConvexity probes the convexity of station k's reception zone
// with two independent certificates:
//
//  1. the Lemma 2.1 line test — for random lines through the zone's
//     vicinity, count distinct real roots of the boundary polynomial
//     with Sturm's condition (Theorem 1 predicts <= 2 for uniform
//     power, alpha = 2, beta >= 1; Figure 5 shows beta < 1 breaking
//     it), and
//  2. a midpoint test — random pairs of in-zone points must have their
//     midpoint in the zone.
//
// Points are drawn within radius `radius` of the station; rng drives
// the sampling and must not be nil.
func (n *Network) CheckConvexity(k, lines, midpoints int, radius float64, rng *rand.Rand) (ConvexityReport, error) {
	if rng == nil {
		return ConvexityReport{}, fmt.Errorf("core: nil rng")
	}
	if n.alpha != 2 {
		return ConvexityReport{}, ErrNeedAlpha2
	}
	s := n.stations[k]
	var report ConvexityReport

	for i := 0; i < lines; i++ {
		// Random line through a random point near the zone at a random
		// angle.
		anchor := geom.PolarPoint(s, rng.Float64()*radius, 2*math.Pi*rng.Float64())
		theta := math.Pi * rng.Float64()
		line := geom.Line{P: anchor, D: geom.Pt(math.Cos(theta), math.Sin(theta))}
		count, err := n.LineRootCount(k, line)
		if err != nil {
			return report, err
		}
		report.LinesTested++
		if count > report.MaxLineCrossings {
			report.MaxLineCrossings = count
		}
	}

	inZone := func() (geom.Point, bool) {
		for try := 0; try < 200; try++ {
			p := geom.PolarPoint(s, rng.Float64()*radius, 2*math.Pi*rng.Float64())
			if n.Heard(k, p) {
				return p, true
			}
		}
		return geom.Point{}, false
	}
	for i := 0; i < midpoints; i++ {
		p1, ok1 := inZone()
		p2, ok2 := inZone()
		if !ok1 || !ok2 {
			break
		}
		report.MidpointsTested++
		if !n.Heard(k, geom.Midpoint(p1, p2)) {
			report.MidpointViolations++
		}
	}
	return report, nil
}

// StarShapeViolations probes Lemma 3.1: along the segment from s_k to
// any in-zone point, SINR must strictly increase toward the station.
// It samples `pairs` random in-zone points, checks `steps`
// intermediate points each, and returns the number of monotonicity
// violations (0 expected for uniform power networks).
func (n *Network) StarShapeViolations(k, pairs, steps int, radius float64, rng *rand.Rand) (int, error) {
	if rng == nil {
		return 0, fmt.Errorf("core: nil rng")
	}
	s := n.stations[k]
	violations := 0
	for i := 0; i < pairs; i++ {
		var p geom.Point
		found := false
		for try := 0; try < 200; try++ {
			p = geom.PolarPoint(s, rng.Float64()*radius, 2*math.Pi*rng.Float64())
			if n.Heard(k, p) && !geom.ApproxEqual(p, s, geom.Eps) {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		prev := n.SINR(k, p)
		for j := 1; j <= steps; j++ {
			t := 1 - float64(j)/float64(steps+1) // walk toward the station
			q := geom.Lerp(s, p, t)
			cur := n.SINR(k, q)
			if cur <= prev*(1-1e-12) {
				violations++
			}
			prev = cur
		}
	}
	return violations, nil
}

// ThreeStationReport carries the Section 3.2 quantities for a
// three-station noise-free uniform network: the restricted quartic
// H(x) on the line y = 1 (after the canonical normalization s0 at the
// origin), the parabola roots r1, r2, their midpoint r̄, the shifted
// polynomial Ĥ(z), and the Sturm sign-change counts at ±∞ that the
// paper bounds (SC(+∞) >= 1, SC(−∞) <= 3, hence <= 2 real roots).
type ThreeStationReport struct {
	H           poly.Poly // quartic in x on the line y = 1
	R1, R2      float64   // x-intercepts of the separation lines L1, L2 with y = 1
	RBar        float64   // (R1 + R2) / 2
	HHat        poly.Poly // H shifted by z = x - r̄
	SCNegInf    int       // sign changes of the Sturm chain of Ĥ at -∞
	SCPosInf    int       // sign changes at +∞
	DistinctPos int       // distinct real roots of H (== of Ĥ)
}

// ThreeStationAnalysis reproduces the Section 3.2 construction for a
// network {s0 = (0,0), s1, s2} with N = 0 and beta = 1 on the line
// y = 1. Both interferers must lie strictly above the line (b_j >= 1)
// with positive abscissae (a_j > 0), which is the normalized hard case
// the paper reduces everything else to; other placements return an
// error directing callers to the reductions (Proposition 3.4 and the
// mirror symmetry).
func ThreeStationAnalysis(s1, s2 geom.Point) (ThreeStationReport, error) {
	if s1.X <= 0 || s2.X <= 0 {
		return ThreeStationReport{}, fmt.Errorf("core: Section 3.2 analysis requires a1, a2 > 0 (Prop. 3.4 covers the rest)")
	}
	if s1.Y < 1 || s2.Y < 1 {
		return ThreeStationReport{}, fmt.Errorf("core: Section 3.2 analysis requires b1, b2 >= 1 (mirror symmetry covers the rest)")
	}
	net, err := NewUniform([]geom.Point{geom.Origin, s1, s2}, 0, 1)
	if err != nil {
		return ThreeStationReport{}, err
	}
	lineY1 := geom.Line{P: geom.Pt(0, 1), D: geom.Pt(1, 0)}
	h, err := net.BoundaryPoly(0, lineY1)
	if err != nil {
		return ThreeStationReport{}, err
	}

	// r_j = (a_j^2 + (b_j - 2) b_j) / (2 a_j): the x-coordinate where
	// the separation line of s0 and s_j crosses y = 1.
	r1 := (s1.X*s1.X + (s1.Y-2)*s1.Y) / (2 * s1.X)
	r2 := (s2.X*s2.X + (s2.Y-2)*s2.Y) / (2 * s2.X)
	rbar := (r1 + r2) / 2

	hhat := h.Shift(rbar)
	seq := poly.NewSturmSequence(hhat)
	return ThreeStationReport{
		H:           h,
		R1:          r1,
		R2:          r2,
		RBar:        rbar,
		HHat:        hhat,
		SCNegInf:    seq.SignChangesAtNegInf(),
		SCPosInf:    seq.SignChangesAtPosInf(),
		DistinctPos: seq.CountRealRoots(),
	}, nil
}
