package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Grid is the gamma-spaced grid of Section 5.1, aligned so that a
// designated anchor point (the station) is a grid vertex. Cells are
// half-open: cell (cx, cy) covers [x0, x0+gamma) x [y0, y0+gamma),
// which realizes the paper's tie-breaking (south and west edges belong
// to the cell, the north-west and south-east corners do not).
type Grid struct {
	Anchor geom.Point
	Gamma  float64
}

// NewGrid returns a grid with the given anchor and spacing gamma > 0.
func NewGrid(anchor geom.Point, gamma float64) (Grid, error) {
	if gamma <= 0 || math.IsNaN(gamma) || math.IsInf(gamma, 0) {
		return Grid{}, fmt.Errorf("core: grid spacing must be positive, got %v", gamma)
	}
	return Grid{Anchor: anchor, Gamma: gamma}, nil
}

// Cell identifies one grid cell by its integer column and row.
type Cell struct {
	Col, Row int
}

// CellOf returns the cell containing p.
func (g Grid) CellOf(p geom.Point) Cell {
	return Cell{
		Col: int(math.Floor((p.X - g.Anchor.X) / g.Gamma)),
		Row: int(math.Floor((p.Y - g.Anchor.Y) / g.Gamma)),
	}
}

// CellBox returns the axis-aligned box of cell c (closed box; the
// half-open ownership convention applies to CellOf, not the geometry).
func (g Grid) CellBox(c Cell) geom.Box {
	x0 := g.Anchor.X + float64(c.Col)*g.Gamma
	y0 := g.Anchor.Y + float64(c.Row)*g.Gamma
	return geom.NewBox(geom.Pt(x0, y0), geom.Pt(x0+g.Gamma, y0+g.Gamma))
}

// CellCenter returns the center point of cell c.
func (g Grid) CellCenter(c Cell) geom.Point {
	return geom.Pt(
		g.Anchor.X+(float64(c.Col)+0.5)*g.Gamma,
		g.Anchor.Y+(float64(c.Row)+0.5)*g.Gamma,
	)
}

// ColumnX returns the x-coordinate of the west edge of column col.
func (g Grid) ColumnX(col int) float64 {
	return g.Anchor.X + float64(col)*g.Gamma
}

// RowY returns the y-coordinate of the south edge of row.
func (g Grid) RowY(row int) float64 {
	return g.Anchor.Y + float64(row)*g.Gamma
}

// NineCell returns the 3x3 block of cells centered on c — the paper's
// ♯C used to inflate boundary cells into the uncertainty ring.
func (g Grid) NineCell(c Cell) [9]Cell {
	var out [9]Cell
	i := 0
	for dc := -1; dc <= 1; dc++ {
		for dr := -1; dr <= 1; dr++ {
			out[i] = Cell{Col: c.Col + dc, Row: c.Row + dr}
			i++
		}
	}
	return out
}
