package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func bruteNearest(pts []geom.Point, q geom.Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, p := range pts {
		if d := geom.Dist(p, q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func TestNearestEmptyAndSingle(t *testing.T) {
	if _, _, ok := New(nil).Nearest(geom.Pt(0, 0)); ok {
		t.Error("empty tree must report !ok")
	}
	tree := New([]geom.Point{geom.Pt(2, 3)})
	idx, d, ok := tree.Nearest(geom.Pt(2, 4))
	if !ok || idx != 0 || math.Abs(d-1) > 1e-12 {
		t.Errorf("idx=%d d=%v ok=%v", idx, d, ok)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		}
		tree := New(pts)
		if tree.Len() != n {
			t.Fatalf("Len = %d, want %d", tree.Len(), n)
		}
		for k := 0; k < 50; k++ {
			q := geom.Pt(rng.Float64()*120-60, rng.Float64()*120-60)
			gotIdx, gotD, ok := tree.Nearest(q)
			if !ok {
				t.Fatal("expected ok")
			}
			wantIdx, wantD := bruteNearest(pts, q)
			// Ties can resolve to different indices; compare distances.
			if math.Abs(gotD-wantD) > 1e-9 {
				t.Fatalf("trial %d: nearest dist %v (idx %d), want %v (idx %d)",
					trial, gotD, gotIdx, wantD, wantIdx)
			}
		}
	}
}

func TestNearestExactPointQuery(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(-3, 1)}
	tree := New(pts)
	for i, p := range pts {
		idx, d, ok := tree.Nearest(p)
		if !ok || idx != i || d != 0 {
			t.Errorf("query at site %d: idx=%d d=%v", i, idx, d)
		}
	}
}

func TestNearestK(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(10, 0),
	}
	tree := New(pts)
	got := tree.NearestK(geom.Pt(0.1, 0), 3)
	want := []int{0, 1, 2}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// k larger than the point count returns all, still sorted.
	all := tree.NearestK(geom.Pt(0, 0), 10)
	if len(all) != len(pts) {
		t.Fatalf("got %d results", len(all))
	}
	for i := 1; i < len(all); i++ {
		if geom.Dist(pts[all[i-1]], geom.Pt(0, 0)) > geom.Dist(pts[all[i]], geom.Pt(0, 0)) {
			t.Fatal("results not sorted by distance")
		}
	}
	if got := tree.NearestK(geom.Pt(0, 0), 0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	tree := New(pts)
	for trial := 0; trial < 20; trial++ {
		q := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		k := 1 + rng.Intn(10)
		got := tree.NearestK(q, k)
		// Brute force: sort all indices by distance.
		idxs := make([]int, len(pts))
		for i := range idxs {
			idxs[i] = i
		}
		sort.Slice(idxs, func(a, b int) bool {
			return geom.Dist2(pts[idxs[a]], q) < geom.Dist2(pts[idxs[b]], q)
		})
		for i := 0; i < k; i++ {
			if geom.Dist2(pts[got[i]], q) != geom.Dist2(pts[idxs[i]], q) {
				t.Fatalf("trial %d: k=%d position %d: got idx %d (d2=%v), want idx %d (d2=%v)",
					trial, k, i, got[i], geom.Dist2(pts[got[i]], q), idxs[i], geom.Dist2(pts[idxs[i]], q))
			}
		}
	}
}

func TestInRange(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 2), geom.Pt(5, 5),
	}
	tree := New(pts)
	got := tree.InRange(geom.Pt(0, 0), 2)
	sort.Ints(got)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if got := tree.InRange(geom.Pt(0, 0), -1); got != nil {
		t.Errorf("negative radius should return nil, got %v", got)
	}
	if got := tree.InRange(geom.Pt(100, 100), 1); len(got) != 0 {
		t.Errorf("far query should return empty, got %v", got)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(2, 2)}
	tree := New(pts)
	idx, d, ok := tree.Nearest(geom.Pt(1, 1))
	if !ok || d != 0 || (idx != 0 && idx != 1) {
		t.Errorf("idx=%d d=%v ok=%v", idx, d, ok)
	}
	got := tree.InRange(geom.Pt(1, 1), 0.5)
	if len(got) != 2 {
		t.Errorf("InRange = %v, want both duplicates", got)
	}
}
