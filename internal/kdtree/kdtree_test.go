package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func bruteNearest(pts []geom.Point, q geom.Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, p := range pts {
		if d := geom.Dist(p, q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func TestNearestEmptyAndSingle(t *testing.T) {
	if _, _, ok := New(nil).Nearest(geom.Pt(0, 0)); ok {
		t.Error("empty tree must report !ok")
	}
	tree := New([]geom.Point{geom.Pt(2, 3)})
	idx, d, ok := tree.Nearest(geom.Pt(2, 4))
	if !ok || idx != 0 || math.Abs(d-1) > 1e-12 {
		t.Errorf("idx=%d d=%v ok=%v", idx, d, ok)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		}
		tree := New(pts)
		if tree.Len() != n {
			t.Fatalf("Len = %d, want %d", tree.Len(), n)
		}
		for k := 0; k < 50; k++ {
			q := geom.Pt(rng.Float64()*120-60, rng.Float64()*120-60)
			gotIdx, gotD, ok := tree.Nearest(q)
			if !ok {
				t.Fatal("expected ok")
			}
			wantIdx, wantD := bruteNearest(pts, q)
			// Ties can resolve to different indices; compare distances.
			if math.Abs(gotD-wantD) > 1e-9 {
				t.Fatalf("trial %d: nearest dist %v (idx %d), want %v (idx %d)",
					trial, gotD, gotIdx, wantD, wantIdx)
			}
		}
	}
}

func TestNearestExactPointQuery(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(-3, 1)}
	tree := New(pts)
	for i, p := range pts {
		idx, d, ok := tree.Nearest(p)
		if !ok || idx != i || d != 0 {
			t.Errorf("query at site %d: idx=%d d=%v", i, idx, d)
		}
	}
}

func TestNearestK(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(10, 0),
	}
	tree := New(pts)
	got := tree.NearestK(geom.Pt(0.1, 0), 3)
	want := []int{0, 1, 2}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// k larger than the point count returns all, still sorted.
	all := tree.NearestK(geom.Pt(0, 0), 10)
	if len(all) != len(pts) {
		t.Fatalf("got %d results", len(all))
	}
	for i := 1; i < len(all); i++ {
		if geom.Dist(pts[all[i-1]], geom.Pt(0, 0)) > geom.Dist(pts[all[i]], geom.Pt(0, 0)) {
			t.Fatal("results not sorted by distance")
		}
	}
	if got := tree.NearestK(geom.Pt(0, 0), 0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	tree := New(pts)
	for trial := 0; trial < 20; trial++ {
		q := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		k := 1 + rng.Intn(10)
		got := tree.NearestK(q, k)
		// Brute force: sort all indices by distance.
		idxs := make([]int, len(pts))
		for i := range idxs {
			idxs[i] = i
		}
		sort.Slice(idxs, func(a, b int) bool {
			return geom.Dist2(pts[idxs[a]], q) < geom.Dist2(pts[idxs[b]], q)
		})
		for i := 0; i < k; i++ {
			if geom.Dist2(pts[got[i]], q) != geom.Dist2(pts[idxs[i]], q) {
				t.Fatalf("trial %d: k=%d position %d: got idx %d (d2=%v), want idx %d (d2=%v)",
					trial, k, i, got[i], geom.Dist2(pts[got[i]], q), idxs[i], geom.Dist2(pts[idxs[i]], q))
			}
		}
	}
}

func TestInRange(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 2), geom.Pt(5, 5),
	}
	tree := New(pts)
	got := tree.InRange(geom.Pt(0, 0), 2)
	sort.Ints(got)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if got := tree.InRange(geom.Pt(0, 0), -1); got != nil {
		t.Errorf("negative radius should return nil, got %v", got)
	}
	if got := tree.InRange(geom.Pt(100, 100), 1); len(got) != 0 {
		t.Errorf("far query should return empty, got %v", got)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(2, 2)}
	tree := New(pts)
	idx, d, ok := tree.Nearest(geom.Pt(1, 1))
	if !ok || d != 0 || idx != 0 {
		t.Errorf("idx=%d d=%v ok=%v, want lowest-index duplicate 0", idx, d, ok)
	}
	got := tree.InRange(geom.Pt(1, 1), 0.5)
	if len(got) != 2 {
		t.Errorf("InRange = %v, want both duplicates", got)
	}
}

// TestNearestTieBreakSymmetric puts four stations on a symmetric cross
// and queries Voronoi cell-boundary points that are exactly equidistant
// from two or four stations. The tie must resolve to the lowest
// original index — the convention Network.HeardBy uses — for every
// input ordering of the stations.
func TestNearestTieBreakSymmetric(t *testing.T) {
	cross := []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0), geom.Pt(0, 1), geom.Pt(0, -1)}
	queries := []geom.Point{
		geom.Pt(0, 0),        // center: equidistant from all four
		geom.Pt(0.5, 0.5),    // bisector of stations at (1,0) and (0,1)
		geom.Pt(-0.5, -0.5),  // bisector of (-1,0) and (0,-1)
		geom.Pt(0.25, -0.25), // bisector of (1,0) and (0,-1)
	}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	for _, perm := range perms {
		pts := make([]geom.Point, len(perm))
		for i, j := range perm {
			pts[i] = cross[j]
		}
		tree := New(pts)
		for _, q := range queries {
			gotIdx, gotD, ok := tree.Nearest(q)
			if !ok {
				t.Fatal("expected ok")
			}
			// Reference: linear scan with lowest-index tie-break.
			wantIdx, wantD2 := -1, math.Inf(1)
			for i, p := range pts {
				if d2 := geom.Dist2(p, q); d2 < wantD2 {
					wantIdx, wantD2 = i, d2
				}
			}
			if gotIdx != wantIdx || math.Abs(gotD*gotD-wantD2) > 1e-12 {
				t.Errorf("perm %v query %v: Nearest = %d (d=%v), want %d",
					perm, q, gotIdx, gotD, wantIdx)
			}
		}
	}
}

// TestNearestKTieBreak checks that NearestK's k-set membership and
// output order are deterministic under exact ties: ascending (d2, idx).
func TestNearestKTieBreak(t *testing.T) {
	// Four corners of a square (all equidistant from the center) plus
	// duplicates and one far point.
	pts := []geom.Point{
		geom.Pt(1, 1), geom.Pt(-1, 1), geom.Pt(1, -1), geom.Pt(-1, -1),
		geom.Pt(1, 1), geom.Pt(-1, -1), geom.Pt(9, 9),
	}
	tree := New(pts)
	q := geom.Pt(0, 0)
	for k := 1; k <= len(pts); k++ {
		got := tree.NearestK(q, k)
		// Reference order: sort indices by (d2, idx).
		idxs := make([]int, len(pts))
		for i := range idxs {
			idxs[i] = i
		}
		sort.Slice(idxs, func(a, b int) bool {
			da, db := geom.Dist2(pts[idxs[a]], q), geom.Dist2(pts[idxs[b]], q)
			if da != db {
				return da < db
			}
			return idxs[a] < idxs[b]
		})
		if len(got) != k {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for i := 0; i < k; i++ {
			if got[i] != idxs[i] {
				t.Fatalf("k=%d: got %v, want prefix of %v", k, got, idxs[:k])
			}
		}
	}
}

// TestNearestMappedAgainstFilteredScan pins NearestMapped to a linear
// scan over the mapped points with (d2, mapped index) ordering —
// including duplicate coordinates, where the tie-break decides.
func TestNearestMappedAgainstFilteredScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(float64(rng.Intn(9)), float64(rng.Intn(9)))
		}
		// A random subset survives; survivors are compacted in order,
		// exactly like a dynamic network's index compaction.
		mapped := make([]int, n)
		cur := 0
		for i := range mapped {
			mapped[i] = -1
			if rng.Intn(4) > 0 {
				mapped[i] = cur
				cur++
			}
		}
		remap := func(i int) (int, bool) { return mapped[i], mapped[i] >= 0 }
		tree := New(pts)
		for q := 0; q < 60; q++ {
			p := geom.Pt(rng.Float64()*10-0.5, rng.Float64()*10-0.5)
			wantIdx, wantD2, wantOK := -1, math.Inf(1), false
			for i, s := range pts {
				m, ok := remap(i)
				if !ok {
					continue
				}
				if d2 := geom.Dist2(s, p); d2 < wantD2 || (d2 == wantD2 && m < wantIdx) {
					wantIdx, wantD2, wantOK = m, d2, true
				}
			}
			gotIdx, gotD2, gotOK := tree.NearestMapped(p, remap)
			if gotOK != wantOK {
				t.Fatalf("trial %d: ok = %v, want %v", trial, gotOK, wantOK)
			}
			if wantOK && (gotIdx != wantIdx || gotD2 != wantD2) {
				t.Fatalf("trial %d: NearestMapped(%v) = (%d, %g), want (%d, %g)",
					trial, p, gotIdx, gotD2, wantIdx, wantD2)
			}
		}
	}
}

// TestNearestMappedIdentityAgreesWithNearest: with the identity remap,
// NearestMapped must answer exactly like Nearest.
func TestNearestMappedIdentityAgreesWithNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*4, rng.Float64()*4)
	}
	tree := New(pts)
	identity := func(i int) (int, bool) { return i, true }
	for q := 0; q < 500; q++ {
		p := geom.Pt(rng.Float64()*5-0.5, rng.Float64()*5-0.5)
		wantIdx, wantDist, wantOK := tree.Nearest(p)
		gotIdx, gotD2, gotOK := tree.NearestMapped(p, identity)
		if gotOK != wantOK || gotIdx != wantIdx || math.Abs(math.Sqrt(gotD2)-wantDist) > 1e-12 {
			t.Fatalf("NearestMapped(%v) = (%d, %g, %v), Nearest = (%d, %g, %v)",
				p, gotIdx, math.Sqrt(gotD2), gotOK, wantIdx, wantDist, wantOK)
		}
	}
}
