package kdtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Tree is an immutable 2-d tree over a fixed point set. The zero value
// is an empty tree; use New to build one.
type Tree struct {
	nodes []node
	root  int
}

type node struct {
	p           geom.Point
	idx         int // index into the original point slice
	axis        int // 0: split on X, 1: split on Y
	left, right int // node indices, -1 for none
}

// New builds a balanced kd-tree over pts in O(n log n). The tree keeps
// its own copy of the coordinates; indices returned by queries refer
// to positions in the input slice.
func New(pts []geom.Point) *Tree {
	t := &Tree{root: -1}
	if len(pts) == 0 {
		return t
	}
	items := make([]node, len(pts))
	for i, p := range pts {
		items[i] = node{p: p, idx: i}
	}
	t.nodes = make([]node, 0, len(pts))
	t.root = t.build(items, 0)
	return t
}

func (t *Tree) build(items []node, axis int) int {
	if len(items) == 0 {
		return -1
	}
	sort.Slice(items, func(i, j int) bool {
		if axis == 0 {
			return items[i].p.X < items[j].p.X
		}
		return items[i].p.Y < items[j].p.Y
	})
	mid := len(items) / 2
	n := items[mid]
	n.axis = axis
	// Reserve our slot before recursing so child pointers are stable.
	self := len(t.nodes)
	t.nodes = append(t.nodes, n)
	left := t.build(items[:mid], 1-axis)
	right := t.build(items[mid+1:], 1-axis)
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.nodes) }

// Nearest returns the index (into the slice passed to New) of the
// point closest to q and its distance. ok is false for an empty tree.
// Exact distance ties are broken toward the lowest original index, so
// the answer agrees with a linear scan in input order (and hence with
// Network.HeardBy's lowest-index convention on equidistant points).
//
//sinr:hotpath
func (t *Tree) Nearest(q geom.Point) (idx int, dist float64, ok bool) {
	if t == nil || t.root < 0 {
		return 0, 0, false
	}
	best := -1
	bestD2 := math.Inf(1)
	t.search(t.root, q, &best, &bestD2)
	return best, math.Sqrt(bestD2), true
}

//sinr:hotpath
func (t *Tree) search(ni int, q geom.Point, best *int, bestD2 *float64) {
	n := &t.nodes[ni]
	if d2 := geom.Dist2(n.p, q); d2 < *bestD2 || (d2 == *bestD2 && n.idx < *best) {
		*bestD2 = d2
		*best = n.idx
	}
	var delta float64
	if n.axis == 0 {
		delta = q.X - n.p.X
	} else {
		delta = q.Y - n.p.Y
	}
	near, far := n.left, n.right
	if delta > 0 {
		near, far = n.right, n.left
	}
	if near >= 0 {
		t.search(near, q, best, bestD2)
	}
	// <= so an equal-distance point with a lower index on the far side
	// is still visited.
	if far >= 0 && delta*delta <= *bestD2 {
		t.search(far, q, best, bestD2)
	}
}

// NearestMapped returns the point minimizing (distance, mapped index)
// among the points remap accepts, reporting the mapped index and the
// squared distance. remap(i) translates a tree index (into the slice
// passed to New) to the caller's current index space and reports
// whether the point still exists there; rejected points are skipped.
//
// This is the query of the dynamic-network overlay: a base tree built
// over an old epoch's stations answers for the current epoch by
// remapping surviving stations to their current indices and filtering
// out departed ones. Ties are broken toward the lowest mapped index,
// so — as long as remap preserves the base order, which index
// compaction does — the answer agrees with Nearest on a tree built
// from scratch over the mapped points.
//
//sinr:hotpath
func (t *Tree) NearestMapped(q geom.Point, remap func(int) (int, bool)) (mapped int, d2 float64, ok bool) {
	if t == nil || t.root < 0 {
		return 0, 0, false
	}
	best := -1
	bestD2 := math.Inf(1)
	t.searchMapped(t.root, q, remap, &best, &bestD2)
	if best < 0 {
		return 0, 0, false
	}
	return best, bestD2, true
}

//sinr:hotpath
func (t *Tree) searchMapped(ni int, q geom.Point, remap func(int) (int, bool), best *int, bestD2 *float64) {
	n := &t.nodes[ni]
	if m, ok := remap(n.idx); ok {
		if d2 := geom.Dist2(n.p, q); d2 < *bestD2 || (d2 == *bestD2 && (*best < 0 || m < *best)) {
			*bestD2 = d2
			*best = m
		}
	}
	var delta float64
	if n.axis == 0 {
		delta = q.X - n.p.X
	} else {
		delta = q.Y - n.p.Y
	}
	near, far := n.left, n.right
	if delta > 0 {
		near, far = n.right, n.left
	}
	if near >= 0 {
		t.searchMapped(near, q, remap, best, bestD2)
	}
	// <= so an equal-distance point with a lower mapped index on the
	// far side is still visited.
	if far >= 0 && delta*delta <= *bestD2 {
		t.searchMapped(far, q, remap, best, bestD2)
	}
}

// NearestK returns the indices of the k points closest to q in
// ascending distance order (fewer if the tree holds fewer points).
// Exact distance ties are broken toward the lowest original index,
// both for membership in the k-set and for the output order, matching
// Nearest's deterministic convention.
func (t *Tree) NearestK(q geom.Point, k int) []int {
	if t == nil || t.root < 0 || k <= 0 {
		return nil
	}
	h := &maxHeap{}
	t.searchK(t.root, q, k, h)
	out := make([]int, len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = h.pop().idx
	}
	return out
}

func (t *Tree) searchK(ni int, q geom.Point, k int, h *maxHeap) {
	n := &t.nodes[ni]
	d2 := geom.Dist2(n.p, q)
	it := heapItem{idx: n.idx, d2: d2}
	if len(h.items) < k {
		h.push(it)
	} else if it.less(h.items[0]) {
		h.pop()
		h.push(it)
	}
	var delta float64
	if n.axis == 0 {
		delta = q.X - n.p.X
	} else {
		delta = q.Y - n.p.Y
	}
	near, far := n.left, n.right
	if delta > 0 {
		near, far = n.right, n.left
	}
	if near >= 0 {
		t.searchK(near, q, k, h)
	}
	// <= so equal-distance points with lower indices on the far side
	// can still displace the current worst tie.
	if far >= 0 && (len(h.items) < k || delta*delta <= h.items[0].d2) {
		t.searchK(far, q, k, h)
	}
}

// InRange returns the indices of all points within radius r of q.
func (t *Tree) InRange(q geom.Point, r float64) []int {
	if t == nil || t.root < 0 || r < 0 {
		return nil
	}
	var out []int
	t.searchRange(t.root, q, r*r, &out)
	return out
}

func (t *Tree) searchRange(ni int, q geom.Point, r2 float64, out *[]int) {
	n := &t.nodes[ni]
	if geom.Dist2(n.p, q) <= r2 {
		*out = append(*out, n.idx)
	}
	var delta float64
	if n.axis == 0 {
		delta = q.X - n.p.X
	} else {
		delta = q.Y - n.p.Y
	}
	near, far := n.left, n.right
	if delta > 0 {
		near, far = n.right, n.left
	}
	if near >= 0 {
		t.searchRange(near, q, r2, out)
	}
	if far >= 0 && delta*delta <= r2 {
		t.searchRange(far, q, r2, out)
	}
}

// heapItem pairs an original index with its squared distance.
type heapItem struct {
	idx int
	d2  float64
}

// less orders items lexicographically on (d2, idx): among equal
// distances the lower index counts as closer, which is what makes the
// k-set and its output order deterministic.
func (a heapItem) less(b heapItem) bool {
	if a.d2 != b.d2 {
		return a.d2 < b.d2
	}
	return a.idx < b.idx
}

// maxHeap is a small hand-rolled max-heap on (d2, idx) order, used by
// NearestK (container/heap would allocate an interface per op).
type maxHeap struct {
	items []heapItem
}

func (h *maxHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[parent].less(h.items[i]) {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *maxHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < last && h.items[largest].less(h.items[l]) {
			largest = l
		}
		if r < last && h.items[largest].less(h.items[r]) {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}
