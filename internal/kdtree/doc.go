// Package kdtree implements a static 2-d tree over plane points with
// O(log n) expected nearest-neighbor queries.
//
// Map to the paper: the Theorem 3 point-location structure needs an
// O(log n) "closest station" pre-filter — Observation 2.2 proves a
// point can only be heard from the station whose Voronoi cell
// contains it — and this tree provides that query. The tree is
// immutable after New, so one instance serves any number of
// concurrent batch-query workers.
package kdtree
