// Package raster renders reception maps — the "numerically generated"
// SINR and UDG diagrams of the paper's Figures 1-5 — by sampling a
// reception model over a pixel grid. It supports ASCII art for
// terminals, binary PPM images for files, per-station area estimates,
// and pixelwise diffs between two models (the UDG-vs-SINR comparisons
// of Figures 2-4).
//
// Rendering shards pixel rows over a worker pool (Options.Workers)
// and feeds models implementing BatchModel — core.Network and
// core.Locator — whole rows at a time, so regenerating the paper's
// figures scales with the available cores while producing identical
// pixels at every worker count.
package raster
