package raster

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/udg"
)

func testNetwork(t *testing.T) *core.Network {
	t.Helper()
	n, err := core.NewUniform([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRenderValidation(t *testing.T) {
	n := testNetwork(t)
	box := geom.NewBox(geom.Pt(-2, -2), geom.Pt(2, 2))
	if _, err := Render(n, box, 1, 10); err == nil {
		t.Error("width < 2 must fail")
	}
	if _, err := Render(n, geom.Box{}, 10, 10); err == nil {
		t.Error("degenerate box must fail")
	}
}

func TestRenderApolloniusAreas(t *testing.T) {
	n := testNetwork(t)
	box := geom.NewBox(geom.Pt(-2, -2), geom.Pt(2, 2))
	rm, err := Render(n, box, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Zone of s0 is the Apollonius disk radius 2/3 -> area 4pi/9.
	got := rm.StationArea(0)
	want := 4 * math.Pi / 9
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("area(H_0) = %v, want ~%v", got, want)
	}
	// Zone of s1 is symmetric (mirror image): same area.
	if got1 := rm.StationArea(1); math.Abs(got1-got) > 0.05*want {
		t.Errorf("area(H_1) = %v, want ~%v", got1, got)
	}
	if rm.PixelArea() <= 0 {
		t.Error("pixel area must be positive")
	}
	cov := rm.CoverageFraction()
	if cov <= 0 || cov >= 1 {
		t.Errorf("coverage = %v", cov)
	}
}

func TestPixelCenterRoundTrip(t *testing.T) {
	n := testNetwork(t)
	box := geom.NewBox(geom.Pt(-1, -1), geom.Pt(1, 1))
	rm, err := Render(n, box, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	// The rendered value at each pixel equals a direct model query at
	// the pixel center.
	for _, pc := range [][2]int{{0, 0}, {25, 25}, {49, 49}, {10, 40}} {
		p := rm.PixelCenter(pc[0], pc[1])
		want := NoStation
		if i, ok := n.HeardBy(p); ok {
			want = i
		}
		if got := rm.At(pc[0], pc[1]); got != want {
			t.Errorf("pixel %v: map says %d, model says %d", pc, got, want)
		}
	}
}

func TestASCII(t *testing.T) {
	n := testNetwork(t)
	box := geom.NewBox(geom.Pt(-2, -2), geom.Pt(2, 2))
	rm, err := Render(n, box, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	art := rm.ASCII()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) != 40 {
			t.Fatalf("line length %d", len(l))
		}
	}
	if !strings.Contains(art, "0") || !strings.Contains(art, "1") {
		t.Error("expected both zones in ASCII output")
	}
	if !strings.Contains(art, "*") {
		t.Error("expected station markers")
	}
	if !strings.Contains(art, ".") {
		t.Error("expected empty space")
	}
}

func TestWritePPM(t *testing.T) {
	n := testNetwork(t)
	box := geom.NewBox(geom.Pt(-2, -2), geom.Pt(2, 2))
	rm, err := Render(n, box, 30, 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rm.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P6\n30 20\n255\n")) {
		t.Errorf("header = %q", data[:13])
	}
	wantLen := len("P6\n30 20\n255\n") + 30*20*3
	if len(data) != wantLen {
		t.Errorf("len = %d, want %d", len(data), wantLen)
	}
}

func TestRenderUDGModel(t *testing.T) {
	// The Model interface accepts the UDG model too.
	m, err := udg.NewUDG([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	box := geom.NewBox(geom.Pt(-3, -3), geom.Pt(13, 3))
	rm, err := Render(m, box, 160, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Each disk has area ~4pi (pixels are 0.1x0.1).
	want := 4 * math.Pi
	for i := 0; i < 2; i++ {
		if got := rm.StationArea(i); math.Abs(got-want) > 0.1*want {
			t.Errorf("area(%d) = %v, want ~%v", i, got, want)
		}
	}
}

func TestDiff(t *testing.T) {
	stations := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}
	box := geom.NewBox(geom.Pt(-2, -2), geom.Pt(5, 2))
	n, _ := core.NewUniform(stations, 0, 2)
	m, _ := udg.NewUDG(stations, 4)
	rmN, err := Render(n, box, 70, 40)
	if err != nil {
		t.Fatal(err)
	}
	rmM, err := Render(m, box, 70, 40)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(rmM, rmN)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 70*40 {
		t.Errorf("total = %d", d.Total)
	}
	if d.Agree+d.OnlyA+d.OnlyB+d.BothMismatch != d.Total {
		t.Error("diff counts do not partition")
	}
	// UDG radius 4 means both stations jam each other everywhere ->
	// SINR-only pixels exist (false negatives of UDG).
	if d.OnlyB == 0 {
		t.Error("expected SINR-only pixels")
	}
	if d.DisagreeFraction() <= 0 {
		t.Error("expected disagreement")
	}
	// Geometry mismatch errors.
	rmSmall, _ := Render(n, box, 10, 10)
	if _, err := Diff(rmN, rmSmall); err == nil {
		t.Error("geometry mismatch must error")
	}
}

func TestDiffStatsZero(t *testing.T) {
	if got := (DiffStats{}).DisagreeFraction(); got != 0 {
		t.Errorf("empty diff fraction = %v", got)
	}
}
