package raster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// threeStationNet builds a network whose zones, gaps and uncertainty
// rings all show up inside the test box.
func threeStationNet(t *testing.T) *core.Network {
	t.Helper()
	n, err := core.NewUniform(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(2, 0.5), geom.Pt(-1.5, 1)}, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRenderWorkerDeterminism renders the same scene at several worker
// counts and demands identical pixels — rows are independent, so the
// shard boundaries must never show.
func TestRenderWorkerDeterminism(t *testing.T) {
	n := threeStationNet(t)
	box := geom.NewBox(geom.Pt(-4, -4), geom.Pt(4, 4))
	want, err := RenderOpts(n, box, 64, 48, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 3, 16, 100} {
		got, err := RenderOpts(n, box, 64, 48, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Pixels {
			if got.Pixels[i] != want.Pixels[i] {
				t.Fatalf("workers=%d: pixel %d diverged (%d vs %d)", w, i, got.Pixels[i], want.Pixels[i])
			}
		}
	}
}

// TestRenderBatchPathMatchesModelPath pins the BatchModel fast path:
// core.Network implements HeardByBatchInto, so Render takes the
// row-batch route; a wrapper hiding the batch method forces the
// point-by-point route. Both must paint the same picture.
func TestRenderBatchPathMatchesModelPath(t *testing.T) {
	n := threeStationNet(t)
	box := geom.NewBox(geom.Pt(-4, -4), geom.Pt(4, 4))
	batch, err := Render(n, box, 50, 40)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Render(modelOnly{n}, box, 50, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch.Pixels {
		if batch.Pixels[i] != slow.Pixels[i] {
			t.Fatalf("pixel %d: batch path %d, interface path %d", i, batch.Pixels[i], slow.Pixels[i])
		}
	}
}

// modelOnly strips every method but the Model interface, defeating the
// BatchModel type assertion.
type modelOnly struct{ n *core.Network }

func (m modelOnly) NumStations() int                 { return m.n.NumStations() }
func (m modelOnly) HeardBy(p geom.Point) (int, bool) { return m.n.HeardBy(p) }
func (m modelOnly) Station(i int) geom.Point         { return m.n.Station(i) }

// TestRenderViaLocator rasterizes through the Theorem 3 structure —
// the service-style figure path — and checks it reproduces the
// ground-truth reception map exactly: LocateExact resolves every
// uncertainty-ring pixel with one direct SINR evaluation.
func TestRenderViaLocator(t *testing.T) {
	n := threeStationNet(t)
	loc, err := n.BuildLocator(0.3)
	if err != nil {
		t.Fatal(err)
	}
	box := geom.NewBox(geom.Pt(-4, -4), geom.Pt(4, 4))
	truth, err := Render(n, box, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Render(loc, box, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Stations) != n.NumStations() {
		t.Fatalf("locator render lost station overlay: %d stations", len(fast.Stations))
	}
	for i := range truth.Pixels {
		if truth.Pixels[i] != fast.Pixels[i] {
			t.Fatalf("pixel %d: network says %d, locator says %d", i, truth.Pixels[i], fast.Pixels[i])
		}
	}
}
