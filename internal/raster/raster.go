package raster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
	"repro/internal/par"
)

// Model is any reception model that can say which station (if any) is
// heard at a point. core.Network, core.Locator and udg.Model all
// satisfy it.
type Model interface {
	NumStations() int
	HeardBy(p geom.Point) (int, bool)
}

// BatchModel is the optional fast path a model can provide: resolve a
// whole slice of points serially, writing the heard station index (or
// NoStation) into dst. core.Network and core.Locator implement it
// (core.NoStationHeard == NoStation); the renderer aims it directly at
// pixel rows, skipping the per-point interface calls.
type BatchModel interface {
	Model
	HeardByBatchInto(ps []geom.Point, dst []int)
}

// NoStation marks pixels where no station is heard.
const NoStation = -1

// Options tunes rendering.
type Options struct {
	// Workers is the number of goroutines pixel rows are sharded
	// over. Zero means one per schedulable CPU; one forces the serial
	// render. Every setting produces identical pixels.
	Workers int
}

// ReceptionMap is a rasterized reception diagram: for every pixel the
// index of the heard station, or NoStation.
type ReceptionMap struct {
	Box    geom.Box
	Width  int
	Height int
	// Pixels holds station indices row-major, row 0 at the box top
	// (maximal Y) so ASCII output reads like the paper's figures.
	Pixels []int
	// Stations are echoed station locations for overlay rendering.
	Stations []geom.Point
}

// Render samples the model at pixel centers over box, sharding pixel
// rows over one worker per schedulable CPU (use RenderOpts to pick the
// worker count). Width and height must be at least 2.
func Render(m Model, box geom.Box, width, height int) (*ReceptionMap, error) {
	return RenderOpts(m, box, width, height, Options{})
}

// RenderOpts is Render with explicit options. Rows are independent, so
// any worker count produces identical pixels; models implementing
// BatchModel are fed whole rows at a time through a per-worker scratch
// buffer of pixel-center points.
func RenderOpts(m Model, box geom.Box, width, height int, opt Options) (*ReceptionMap, error) {
	if width < 2 || height < 2 {
		return nil, errors.New("raster: need at least 2x2 pixels")
	}
	if box.Area() <= 0 {
		return nil, errors.New("raster: box has no area")
	}
	rm := &ReceptionMap{
		Box:    box,
		Width:  width,
		Height: height,
		Pixels: make([]int, width*height),
	}
	type staccess interface{ Station(int) geom.Point }
	if sa, ok := m.(staccess); ok {
		for i := 0; i < m.NumStations(); i++ {
			rm.Stations = append(rm.Stations, sa.Station(i))
		}
	}
	bm, batch := m.(BatchModel)
	renderRows := func(rowLo, rowHi int) {
		var pts []geom.Point
		if batch {
			pts = make([]geom.Point, width)
		}
		for row := rowLo; row < rowHi; row++ {
			y := box.Max.Y - (float64(row)+0.5)*box.Height()/float64(height)
			dst := rm.Pixels[row*width : (row+1)*width]
			if batch {
				for col := 0; col < width; col++ {
					pts[col] = geom.Pt(box.Min.X+(float64(col)+0.5)*box.Width()/float64(width), y)
				}
				bm.HeardByBatchInto(pts, dst)
				continue
			}
			for col := 0; col < width; col++ {
				x := box.Min.X + (float64(col)+0.5)*box.Width()/float64(width)
				idx := NoStation
				if i, ok := m.HeardBy(geom.Pt(x, y)); ok {
					idx = i
				}
				dst[col] = idx
			}
		}
	}

	par.Chunks(height, opt.Workers, renderRows)
	return rm, nil
}

// At returns the station index at pixel (col, row), or NoStation.
func (rm *ReceptionMap) At(col, row int) int {
	return rm.Pixels[row*rm.Width+col]
}

// PixelArea returns the plane area represented by one pixel.
func (rm *ReceptionMap) PixelArea() float64 {
	return rm.Box.Area() / float64(rm.Width*rm.Height)
}

// PixelCenter returns the plane coordinates of pixel (col, row).
func (rm *ReceptionMap) PixelCenter(col, row int) geom.Point {
	return geom.Pt(
		rm.Box.Min.X+(float64(col)+0.5)*rm.Box.Width()/float64(rm.Width),
		rm.Box.Max.Y-(float64(row)+0.5)*rm.Box.Height()/float64(rm.Height),
	)
}

// StationArea estimates area(H_i) as (pixel count) * (pixel area).
func (rm *ReceptionMap) StationArea(i int) float64 {
	count := 0
	for _, v := range rm.Pixels {
		if v == i {
			count++
		}
	}
	return float64(count) * rm.PixelArea()
}

// CoverageFraction returns the fraction of pixels where some station
// is heard.
func (rm *ReceptionMap) CoverageFraction() float64 {
	heard := 0
	for _, v := range rm.Pixels {
		if v != NoStation {
			heard++
		}
	}
	return float64(heard) / float64(len(rm.Pixels))
}

// zoneGlyphs are the characters used for stations 0.. in ASCII output.
const zoneGlyphs = "0123456789abcdefghijklmnopqrstuvwxyz"

// ASCII renders the map as text: '.' for no reception, one glyph per
// station zone, '*' overlaid at station pixels.
func (rm *ReceptionMap) ASCII() string {
	var b strings.Builder
	b.Grow((rm.Width + 1) * rm.Height)
	stationPixel := make(map[[2]int]bool, len(rm.Stations))
	for _, s := range rm.Stations {
		col := int((s.X - rm.Box.Min.X) / rm.Box.Width() * float64(rm.Width))
		row := int((rm.Box.Max.Y - s.Y) / rm.Box.Height() * float64(rm.Height))
		if col >= 0 && col < rm.Width && row >= 0 && row < rm.Height {
			stationPixel[[2]int{col, row}] = true
		}
	}
	for row := 0; row < rm.Height; row++ {
		for col := 0; col < rm.Width; col++ {
			if stationPixel[[2]int{col, row}] {
				b.WriteByte('*')
				continue
			}
			v := rm.At(col, row)
			switch {
			case v == NoStation:
				b.WriteByte('.')
			case v < len(zoneGlyphs):
				b.WriteByte(zoneGlyphs[v])
			default:
				b.WriteByte('#')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// palette returns a visually distinct RGB color for station i.
func palette(i int) [3]byte {
	colors := [][3]byte{
		{230, 60, 60}, {60, 160, 230}, {90, 200, 90}, {230, 180, 50},
		{180, 90, 220}, {60, 210, 200}, {240, 120, 180}, {150, 150, 60},
		{100, 100, 240}, {240, 140, 60},
	}
	return colors[i%len(colors)]
}

// WritePPM writes the map as a binary PPM (P6) image: white background,
// one palette color per zone, black dots at station pixels.
func (rm *ReceptionMap) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", rm.Width, rm.Height); err != nil {
		return err
	}
	stationPixel := make(map[[2]int]bool, len(rm.Stations))
	for _, s := range rm.Stations {
		col := int((s.X - rm.Box.Min.X) / rm.Box.Width() * float64(rm.Width))
		row := int((rm.Box.Max.Y - s.Y) / rm.Box.Height() * float64(rm.Height))
		for dc := -1; dc <= 1; dc++ {
			for dr := -1; dr <= 1; dr++ {
				stationPixel[[2]int{col + dc, row + dr}] = true
			}
		}
	}
	buf := make([]byte, 0, rm.Width*3)
	for row := 0; row < rm.Height; row++ {
		buf = buf[:0]
		for col := 0; col < rm.Width; col++ {
			var rgb [3]byte
			switch {
			case stationPixel[[2]int{col, row}]:
				rgb = [3]byte{0, 0, 0}
			case rm.At(col, row) == NoStation:
				rgb = [3]byte{255, 255, 255}
			default:
				rgb = palette(rm.At(col, row))
			}
			buf = append(buf, rgb[0], rgb[1], rgb[2])
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DiffStats summarizes a pixelwise comparison of two maps.
type DiffStats struct {
	Total        int // pixels compared
	Agree        int // same answer (same station or both silent)
	OnlyA        int // A hears someone, B hears nobody
	OnlyB        int // B hears someone, A hears nobody
	BothMismatch int // both hear, different stations
}

// DisagreeFraction returns the fraction of pixels with any difference.
func (d DiffStats) DisagreeFraction() float64 {
	if d.Total == 0 {
		return 0
	}
	return float64(d.Total-d.Agree) / float64(d.Total)
}

// Diff compares two maps of identical geometry pixelwise.
func Diff(a, b *ReceptionMap) (DiffStats, error) {
	if a.Width != b.Width || a.Height != b.Height || a.Box != b.Box {
		return DiffStats{}, errors.New("raster: maps have different geometry")
	}
	var d DiffStats
	d.Total = len(a.Pixels)
	for i := range a.Pixels {
		va, vb := a.Pixels[i], b.Pixels[i]
		switch {
		case va == vb:
			d.Agree++
		case va != NoStation && vb == NoStation:
			d.OnlyA++
		case va == NoStation && vb != NoStation:
			d.OnlyB++
		default:
			d.BothMismatch++
		}
	}
	return d, nil
}
