package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/geom"
	"repro/internal/sched"
	"repro/internal/workload"
)

// DefaultSchedSizes is the instance-size axis of the E20 scheduling
// sweep used by tests and CI. The committed BENCH_sched.json
// trajectory is produced at 1000, 10000 and 100000 links
// (sinrbench -sched-sizes 1000,10000,100000).
var DefaultSchedSizes = []int{256, 1024}

// schedBenchAlpha is the path-loss exponent of the E20 instances. At
// alpha=2 the planar interference sum diverges logarithmically with
// the field radius, so constant-density instances become uniformly
// infeasible as n grows; alpha=3 converges and keeps slot populations
// meaningful at n=10^5.
const schedBenchAlpha = 3

// SchedBenchRow is one cell of the E20 scheduling sweep: one
// (scheduler, instance size) pair, scheduled under both interference
// models. The feasibility-throughput fields (greedy rows only) race
// one incremental trial placement against the naive O(k²) scan on the
// largest SINR slot of the greedy schedule. The JSON tags define the
// BENCH_sched.json artifact schema.
type SchedBenchRow struct {
	Scheduler       string  `json:"scheduler"`
	Links           int     `json:"links"`
	SINRSlots       int     `json:"sinr_slots"`
	ProtocolSlots   int     `json:"protocol_slots"`
	SINRBuildNanos  int64   `json:"sinr_build_ns"`
	ProtoBuildNanos int64   `json:"protocol_build_ns"`
	ProbeSlotSize   int     `json:"probe_slot_size,omitempty"`
	FeasIncNanos    int64   `json:"feas_inc_ns_per_trial,omitempty"`
	FeasScanNanos   int64   `json:"feas_scan_ns_per_trial,omitempty"`
	FeasSpeedup     float64 `json:"feas_speedup,omitempty"`
	Mismatches      int     `json:"mismatches"`
}

// schedInstance builds the E20 instance: n links at constant density
// (side grows with sqrt(n)), lengths in [0.5, 1.5).
func schedInstance(gen *workload.Generator, n int) (*sched.SINRProblem, *sched.ProtocolProblem, error) {
	side := 3 * math.Sqrt(float64(n))
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(side, side))
	links := randomLinks(gen, n, box, 0.5, 1.5)
	sp, err := sched.NewSINRProblem(links, 0.0001, 2)
	if err != nil {
		return nil, nil, err
	}
	sp.Alpha = schedBenchAlpha
	pp, err := sched.NewProtocolProblem(links, 1.5, 3)
	if err != nil {
		return nil, nil, err
	}
	return sp, pp, nil
}

// checkSchedule validates s and cross-checks the incremental
// feasibility path against the naive scan, returning the number of
// disagreements (0 on a correct engine). Full-schedule scan
// validation is O(sum k²); beyond scanCap links the scan cross-check
// samples sampleSlots slots instead of covering all of them.
func checkSchedule(f sched.Feasibility, scan func([]int) bool, s *sched.Schedule, links int) int {
	const (
		scanCap     = 4096
		sampleSlots = 8
	)
	mismatches := 0
	if err := s.Validate(f); err != nil {
		mismatches++
	}
	if s.NumLinks() != links {
		mismatches++
	}
	stride := 1
	if links > scanCap && len(s.Slots) > sampleSlots {
		stride = len(s.Slots) / sampleSlots
	}
	for si := 0; si < len(s.Slots); si += stride {
		if f.SlotFeasible(s.Slots[si]) != scan(s.Slots[si]) {
			mismatches++
		}
	}
	return mismatches
}

// timeTrials reports the per-call cost of fn over trials calls.
func timeTrials(trials int, fn func(int)) int64 {
	t0 := time.Now()
	for i := 0; i < trials; i++ {
		fn(i)
	}
	return time.Since(t0).Nanoseconds() / int64(trials)
}

// MeasureSched runs the E20 measurement: for each instance size and
// each scheduler kind, build a schedule under the SINR and the
// protocol model (timed), validate both against the feasibility
// oracles (cross-checking incremental against scan answers), and — on
// the greedy rows — race one incremental trial placement against the
// naive O(k²) scan recheck on the largest SINR slot, which is the
// operation the incremental refactor replaces inside every scheduler
// inner loop.
func MeasureSched(sizes []int) ([]SchedBenchRow, error) {
	var rows []SchedBenchRow
	for _, n := range sizes {
		gen := workload.NewGenerator(int64(12000 * (n + 1)))
		sp, pp, err := schedInstance(gen, n)
		if err != nil {
			return nil, err
		}
		order := sched.ByLength(sp.Links, true)
		for _, kind := range sched.Kinds() {
			row := SchedBenchRow{Scheduler: kind.String(), Links: n}

			t0 := time.Now()
			ss, err := sched.BuildSchedule(kind, sp, order)
			row.SINRBuildNanos = time.Since(t0).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("E20 %s n=%d sinr: %w", kind, n, err)
			}
			row.SINRSlots = ss.NumSlots()
			row.Mismatches += checkSchedule(sp, sp.SlotFeasibleScan, ss, n)

			t0 = time.Now()
			ps, err := sched.BuildSchedule(kind, pp, order)
			row.ProtoBuildNanos = time.Since(t0).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("E20 %s n=%d protocol: %w", kind, n, err)
			}
			row.ProtocolSlots = ps.NumSlots()
			row.Mismatches += checkSchedule(pp, pp.SlotFeasibleScan, ps, n)

			if kind == sched.KindGreedy {
				measureFeasibility(sp, ss, &row)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// measureFeasibility fills the greedy row's trial-placement race: the
// incremental CanAdd against the naive scan of the same (slot, probe)
// sets, on the largest slot of the SINR schedule. Scan trials are
// capped — each costs O(k²) — with agreement checked on the trials
// both sides ran.
func measureFeasibility(sp *sched.SINRProblem, ss *sched.Schedule, row *SchedBenchRow) {
	largest := 0
	for si := range ss.Slots {
		if len(ss.Slots[si]) > len(ss.Slots[largest]) {
			largest = si
		}
	}
	members := ss.Slots[largest]
	row.ProbeSlotSize = len(members)
	inSlot := make(map[int]bool, len(members))
	for _, li := range members {
		inSlot[li] = true
	}
	var probes []int
	for li := 0; li < sp.NumLinks() && len(probes) < 256; li++ {
		if !inSlot[li] {
			probes = append(probes, li)
		}
	}
	if len(probes) == 0 {
		return
	}
	slot := sp.NewSlot()
	for _, li := range members {
		slot.Add(li)
	}
	incTrials := 2048
	scanTrials := incTrials
	if k := len(members); k > 0 {
		if scanTrials > 1<<19/k {
			scanTrials = 1 << 19 / k
		}
	}
	if scanTrials < 4 {
		scanTrials = 4
	}
	scanSet := append(append([]int{}, members...), 0)
	// Agreement first (counts into Mismatches), then the timed races.
	for i := 0; i < scanTrials; i++ {
		p := probes[i%len(probes)]
		scanSet[len(scanSet)-1] = p
		if slot.CanAdd(p) != sp.SlotFeasibleScan(scanSet) {
			row.Mismatches++
		}
	}
	row.FeasIncNanos = timeTrials(incTrials, func(i int) {
		slot.CanAdd(probes[i%len(probes)])
	})
	row.FeasScanNanos = timeTrials(scanTrials, func(i int) {
		scanSet[len(scanSet)-1] = probes[i%len(probes)]
		sp.SlotFeasibleScan(scanSet)
	})
	if row.FeasIncNanos > 0 {
		row.FeasSpeedup = float64(row.FeasScanNanos) / float64(row.FeasIncNanos)
	}
}

// WriteSchedBenchJSON writes the E20 rows as the BENCH_sched.json
// artifact (an indented JSON array).
func WriteSchedBenchJSON(path string, rows []SchedBenchRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// SchedComparison runs E20: the three schedulers over the incremental
// feasibility engines, SINR versus protocol model, at constant
// density. The shape checks are the refactor's contract: zero
// validation or incremental-vs-scan mismatches anywhere, greedy SINR
// schedules no longer than protocol ones up to n = 10^4 (the paper's
// motivating claim, E14 scaled up — beyond that the comparison
// genuinely crosses over: the protocol model's constant-radius
// constraints are purely local so its slot count saturates at
// constant density, while the SINR model keeps paying slowly-growing
// accumulated far-field interference), and — at n >= 10^4, where the
// old O(k²) recheck hurts — at least a 10x speedup of the incremental
// trial placement over the scan. jsonPath, when non-empty, receives
// the BENCH_sched.json artifact.
func SchedComparison(sizes []int, jsonPath string) (*Table, error) {
	t := &Table{
		ID:         "E20",
		Title:      "Scheduling at scale: incremental slot engines, SINR vs protocol",
		PaperClaim: "physical-model scheduling stays tractable at n=10^5 once slot feasibility is incremental (Sec. 1.1, refs [8,12,13])",
		Headers:    []string{"sched", "n", "sinr slots", "proto slots", "sinr build", "slot k", "inc/trial", "scan/trial", "speedup", "mismatch"},
	}
	rows, err := MeasureSched(sizes)
	if err != nil {
		return nil, err
	}
	t.Pass = true
	for _, r := range rows {
		incS, scanS, speedup := "-", "-", "-"
		slotK := "-"
		if r.FeasIncNanos > 0 {
			incS = time.Duration(r.FeasIncNanos).String()
			scanS = time.Duration(r.FeasScanNanos).String()
			speedup = fmt.Sprintf("%.1fx", r.FeasSpeedup)
			slotK = fmt.Sprintf("%d", r.ProbeSlotSize)
		}
		t.AddRow(
			r.Scheduler,
			fmt.Sprintf("%d", r.Links),
			fmt.Sprintf("%d", r.SINRSlots),
			fmt.Sprintf("%d", r.ProtocolSlots),
			time.Duration(r.SINRBuildNanos).String(),
			slotK, incS, scanS, speedup,
			fmt.Sprintf("%d", r.Mismatches),
		)
		if r.Mismatches != 0 {
			t.Pass = false
		}
		if r.Scheduler == sched.KindGreedy.String() {
			if r.Links <= 10000 && r.SINRSlots > r.ProtocolSlots {
				t.Pass = false
			}
			if r.Links >= 10000 && r.FeasSpeedup < 10 {
				t.Pass = false
			}
		}
	}
	if jsonPath != "" {
		if err := WriteSchedBenchJSON(jsonPath, rows); err != nil {
			return nil, err
		}
		t.Note("wrote %s (%d rows)", jsonPath, len(rows))
	}
	t.Note("alpha=%d instances at constant density; scan cross-check samples slots above n=4096; feasibility race on the largest greedy SINR slot; SINR<=protocol asserted up to n=10^4 (local protocol constraints saturate while SINR interference accumulates)", schedBenchAlpha)
	return t, nil
}
