package exp

import (
	"testing"

	"repro/internal/geom"
)

func TestFig1ScenarioNumbers(t *testing.T) {
	a, b, c, err := Fig1Scenario()
	if err != nil {
		t.Fatal(err)
	}
	p := Fig1Receiver
	// Scenario A: SINR(s2, p) must clear beta = 2 with margin; by
	// construction E2 = 1/1.5^2, E1 = 1/25, E3 ~ 0.1, N = 0.02.
	if got := a.SINR(1, p); got < 2 {
		t.Errorf("A: SINR(s2) = %v, want >= 2", got)
	}
	// Scenario B: nobody clears the threshold.
	for i := 0; i < b.NumStations(); i++ {
		if got := b.SINR(i, p); got >= 2 {
			t.Errorf("B: SINR(s%d) = %v, want < 2", i+1, got)
		}
	}
	// Scenario C: s1 (index 0) clears it.
	if got := c.SINR(0, p); got < 2 {
		t.Errorf("C: SINR(s1) = %v, want >= 2", got)
	}
	// C is B minus s3: station sets must match on the survivors.
	if c.NumStations() != 2 || c.Station(0) != b.Station(0) || c.Station(1) != b.Station(1) {
		t.Error("scenario C must be B with s3 silenced")
	}
	// A and B differ only in s1's position.
	if a.Station(1) != b.Station(1) || a.Station(2) != b.Station(2) {
		t.Error("only s1 moves between A and B")
	}
	if a.Station(0) == b.Station(0) {
		t.Error("s1 must move between A and B")
	}
}

func TestFig2ScenarioEnergies(t *testing.T) {
	m, n, p, err := Fig2Scenario()
	if err != nil {
		t.Fatal(err)
	}
	// p is within UDG range of s1 only.
	if geom.Dist(m.Station(0), p) > m.ConnRadius() {
		t.Error("p must be UDG-adjacent to s1")
	}
	for i := 1; i < m.NumStations(); i++ {
		if geom.Dist(m.Station(i), p) <= m.InterfRadius() {
			t.Errorf("s%d must be out of UDG range of p", i+1)
		}
	}
	// The single strongest interferer alone would NOT kill reception —
	// it is genuinely the cumulative effect.
	strongest := 0.0
	for i := 1; i < n.NumStations(); i++ {
		if e := n.Energy(i, p); e > strongest {
			strongest = e
		}
	}
	signal := n.Energy(0, p)
	if signal < n.Beta()*strongest {
		t.Error("a single interferer suffices; scenario must need the cumulative sum")
	}
	if signal >= n.Beta()*n.Interference(0, p) {
		t.Error("the cumulative interference must kill reception")
	}
}

func TestFig5ScenarioProperties(t *testing.T) {
	n, err := Fig5Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if n.Beta() >= 1 {
		t.Error("Figure 5 requires beta < 1")
	}
	if !n.IsUniform() || n.Alpha() != 2 {
		t.Error("Figure 5 is a uniform alpha=2 network")
	}
	two, err := Fig5TwoStation()
	if err != nil {
		t.Fatal(err)
	}
	// The hole: in-zone on both sides of the interferer along the
	// x-axis, out-of-zone at the interferer.
	if !two.Heard(0, geom.Pt(0, 0)) || !two.Heard(0, geom.Pt(10, 0)) {
		t.Error("zone must be present on both sides of the hole")
	}
	if two.Heard(0, geom.Pt(2.05, 0)) {
		t.Error("hole must exist near the interferer")
	}
}

func TestStationName(t *testing.T) {
	if stationName(-1) != "-" {
		t.Errorf("stationName(-1) = %q", stationName(-1))
	}
	if stationName(0) != "s1" || stationName(11) != "s12" {
		t.Error("stationName formatting wrong")
	}
}

func TestRunFig34StepInvariants(t *testing.T) {
	steps, err := RunFig34()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 {
		t.Fatalf("steps = %d", len(steps))
	}
	for i, s := range steps {
		if s.Step != i+1 || len(s.Transmitting) != i+1 {
			t.Errorf("step %d malformed: %+v", i+1, s)
		}
		if s.UDGStation >= 0 && s.SINRStation >= 0 && s.UDGStation != s.SINRStation {
			// Both models can hear someone, but it must be the same
			// station in this scenario family.
			t.Errorf("step %d: UDG %d vs SINR %d", i+1, s.UDGStation, s.SINRStation)
		}
	}
}
