package exp

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result: headers, rows, and the
// paper claim being checked.
type Table struct {
	ID         string   // experiment id, e.g. "E1"
	Title      string   // short experiment title
	PaperClaim string   // what the paper's figure/theorem predicts
	Headers    []string // column headers
	Rows       [][]string
	Notes      []string // free-form observations appended after rows
	Pass       bool     // whether the measured shape matches the claim
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from values via %v.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	status := "PASS"
	if !t.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", t.ID, t.Title, status)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
