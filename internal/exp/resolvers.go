package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/resolve"
	"repro/internal/workload"
)

// ResolverBenchRow is one cell of the E17 cross-backend comparison:
// a (workload, resolver) pair with throughput, latency percentiles
// and the answer-disagreement fraction against the exact backend.
// The JSON tags define the BENCH_resolvers.json artifact schema.
type ResolverBenchRow struct {
	Workload   string  `json:"workload"`
	Resolver   string  `json:"resolver"`
	Stations   int     `json:"stations"`
	Queries    int     `json:"queries"`
	BuildNanos int64   `json:"build_ns"`
	QPS        float64 `json:"qps"`
	P50Nanos   int64   `json:"p50_ns"`
	P99Nanos   int64   `json:"p99_ns"`
	Disagree   float64 `json:"disagree_frac"`
}

// resolverWorkloads are the three query distributions every backend is
// compared on — the same trio cmd/sinrload can replay over HTTP.
func resolverWorkloads(gen *workload.Generator, queries int, box geom.Box) map[string][]geom.Point {
	mob := gen.MobilityTrace(64, (queries+63)/64, box, 0.05)
	return map[string][]geom.Point{
		"uniform":  gen.QueryPoints(queries, box),
		"hotspot":  gen.HotspotPoints(queries, box, 4, 0.8, 0.3),
		"mobility": mob[:min(queries, len(mob))],
	}
}

// MeasureResolverComparison runs every backend named by filter
// ("" or "all" means all four) over the uniform, hotspot and mobility
// workloads on one random uniform n-station network and measures
// build cost, batch throughput, single-query latency percentiles and
// per-point disagreement against the exact backend.
func MeasureResolverComparison(n, queries, workers int, filter string) ([]ResolverBenchRow, error) {
	gen := workload.NewGenerator(int64(6000 * n))
	net, err := randomUniformNet(gen, n, 0.01, 3)
	if err != nil {
		return nil, err
	}
	box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
	loads := resolverWorkloads(gen, queries, box)

	kinds := resolve.Kinds()
	if filter != "" && filter != "all" {
		k, err := resolve.ParseKind(filter)
		if err != nil {
			return nil, err
		}
		kinds = []resolve.Kind{k}
	}

	ctx := context.Background()
	exact, err := resolve.NewExact(net, resolve.WithWorkers(workers))
	if err != nil {
		return nil, err
	}

	names := make([]string, 0, len(loads))
	for name := range loads {
		names = append(names, name)
	}
	sort.Strings(names)

	// The ground truth depends only on the workload — compute it once
	// per workload, not once per (kind, workload) cell.
	truths := make(map[string][]core.Location, len(names))
	for _, name := range names {
		truth := make([]core.Location, len(loads[name]))
		if err := exact.ResolveBatch(ctx, loads[name], truth); err != nil {
			return nil, err
		}
		truths[name] = truth
	}

	var rows []ResolverBenchRow
	for _, kind := range kinds {
		res, err := resolve.New(kind, net,
			resolve.WithWorkers(workers), resolve.WithEpsilon(0.1))
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			pts := loads[name]
			truth := truths[name]

			// Latency percentiles from timed single-point queries.
			lat := make([]time.Duration, len(pts))
			for i, p := range pts {
				t0 := time.Now()
				res.Resolve(ctx, p)
				lat[i] = time.Since(t0)
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

			// Throughput from one sharded batch run.
			answers := make([]core.Location, len(pts))
			t0 := time.Now()
			if err := res.ResolveBatch(ctx, pts, answers); err != nil {
				return nil, err
			}
			elapsed := time.Since(t0)

			disagree := 0
			for i := range answers {
				if resolve.StationIndex(answers[i]) != resolve.StationIndex(truth[i]) {
					disagree++
				}
			}
			rows = append(rows, ResolverBenchRow{
				Workload:   name,
				Resolver:   kind.String(),
				Stations:   n,
				Queries:    len(pts),
				BuildNanos: res.Stats().BuildCost.Nanoseconds(),
				QPS:        float64(len(pts)) / elapsed.Seconds(),
				P50Nanos:   lat[len(lat)/2].Nanoseconds(),
				P99Nanos:   lat[len(lat)*99/100].Nanoseconds(),
				Disagree:   float64(disagree) / float64(len(pts)),
			})
		}
	}
	return rows, nil
}

// WriteResolverBenchJSON writes the E17 rows as the
// BENCH_resolvers.json artifact (an indented JSON array).
func WriteResolverBenchJSON(path string, rows []ResolverBenchRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ResolverComparison runs E17: the four resolvers of the pluggable
// query API answer the same uniform, hotspot and mobility workloads;
// qps, latency percentiles and answer disagreement are tabulated per
// (workload, backend). filter restricts the backend axis ("" or
// "all" runs all four); jsonPath, when non-empty, receives the
// BENCH_resolvers.json artifact.
//
// The shape check is the paper's: the exact, locator and voronoi
// backends are algorithms for the same SINR question and must
// disagree on zero points, while the UDG baseline is a different
// reception model whose disagreement is reported, not constrained.
func ResolverComparison(workers int, filter, jsonPath string) (*Table, error) {
	t := &Table{
		ID:         "E17",
		Title:      "Pluggable resolvers: one query interface, four backends",
		PaperClaim: "exact, Theorem 3 locator (exact fallback) and Voronoi-candidate answer identically on every workload; UDG is the graph baseline the paper argues against",
		Headers:    []string{"workload", "resolver", "build", "qps", "p50", "p99", "disagree"},
	}
	rows, err := MeasureResolverComparison(24, 2000, workers, filter)
	if err != nil {
		return nil, err
	}
	t.Pass = true
	for _, r := range rows {
		t.AddRow(
			r.Workload,
			r.Resolver,
			time.Duration(r.BuildNanos).Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", r.QPS),
			time.Duration(r.P50Nanos).String(),
			time.Duration(r.P99Nanos).String(),
			fmt.Sprintf("%.4f", r.Disagree),
		)
		if r.Resolver != resolve.KindUDG.String() && r.Disagree != 0 {
			t.Pass = false
		}
	}
	if jsonPath != "" {
		if err := WriteResolverBenchJSON(jsonPath, rows); err != nil {
			return nil, err
		}
		t.Note("wrote %s (%d rows)", jsonPath, len(rows))
	}
	t.Note("disagree is the per-point answer-disagreement fraction vs the exact backend")
	return t, nil
}
