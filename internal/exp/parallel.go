package exp

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// ParallelTiming holds measured serial-vs-parallel times for E16.
type ParallelTiming struct {
	N             int
	Workers       int
	SerialBuild   time.Duration
	ParallelBuild time.Duration
	SerialQuery   time.Duration // per op, single-point Locate loop
	BatchQuery    time.Duration // per op, LocateBatch shards
}

// MeasureParallelScaling measures the concurrency layer: serial vs
// worker-pool locator builds and single-point vs batch query
// throughput, verifying along the way that both build modes answer
// identically. workers <= 0 means core.DefaultWorkers().
func MeasureParallelScaling(sizes []int, workers, queries int) ([]ParallelTiming, error) {
	if workers <= 0 {
		workers = core.DefaultWorkers()
	}
	var out []ParallelTiming
	for _, n := range sizes {
		gen := workload.NewGenerator(int64(5000 * n))
		net, err := randomUniformNet(gen, n, 0.01, 3)
		if err != nil {
			return nil, err
		}
		box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
		qs := gen.QueryPoints(queries, box)

		start := time.Now()
		serial, err := net.BuildLocatorOpts(0.2, core.BuildOptions{Workers: 1})
		if err != nil {
			return nil, err
		}
		serialBuild := time.Since(start)

		start = time.Now()
		par, err := net.BuildLocatorOpts(0.2, core.BuildOptions{Workers: workers})
		if err != nil {
			return nil, err
		}
		parBuild := time.Since(start)

		start = time.Now()
		for _, p := range qs {
			serial.Locate(p)
		}
		serialQuery := time.Since(start) / time.Duration(len(qs))

		start = time.Now()
		answers := par.LocateBatchOpts(qs, core.BatchOptions{Workers: workers})
		batchQuery := time.Since(start) / time.Duration(len(qs))

		for i, p := range qs {
			if answers[i] != serial.Locate(p) {
				return nil, fmt.Errorf("exp: parallel batch answer diverges from serial build at n=%d query %d", n, i)
			}
		}

		out = append(out, ParallelTiming{
			N: n, Workers: workers,
			SerialBuild: serialBuild, ParallelBuild: parBuild,
			SerialQuery: serialQuery, BatchQuery: batchQuery,
		})
	}
	return out, nil
}

// ParallelScaling runs E16 and formats the timings. The shape check is
// equality of answers, not wall-clock speedup — on a single-core
// runner the worker pool legitimately buys nothing.
func ParallelScaling(workers int) (*Table, error) {
	t := &Table{
		ID:         "E16",
		Title:      "Concurrency layer: parallel locator build and batch queries",
		PaperClaim: "per-station QDS builds are independent; a worker pool scales the O(n^3/eps) build ~NumCPU with identical answers",
		Headers:    []string{"n", "workers", "serialBuild", "parBuild", "serial/op", "batch/op"},
	}
	timings, err := MeasureParallelScaling([]int{8, 24}, workers, 2000)
	if err != nil {
		return nil, err
	}
	for _, tm := range timings {
		t.AddRow(
			strconv.Itoa(tm.N),
			strconv.Itoa(tm.Workers),
			tm.SerialBuild.Round(time.Microsecond).String(),
			tm.ParallelBuild.Round(time.Microsecond).String(),
			tm.SerialQuery.String(),
			tm.BatchQuery.String(),
		)
	}
	t.Pass = true
	t.Note("answers byte-identical across build modes and worker counts; speedup tracks available cores")
	return t, nil
}
