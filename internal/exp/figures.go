package exp

import (
	"math/rand"
	"strconv"

	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/udg"
)

// Fig1Reception regenerates Figure 1: the reception outcome at the
// fixed receiver across the three scenarios.
func Fig1Reception() (*Table, error) {
	a, b, c, err := Fig1Scenario()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "E1",
		Title:      "Figure 1: reception flips as stations move or go silent",
		PaperClaim: "(A) p hears s2; (B) after s1 moves, p hears nothing; (C) with s3 silent, p hears s1",
		Headers:    []string{"scenario", "active", "heard@p", "expected"},
	}
	p := Fig1Receiver

	heardA := stationIdx(a.HeardBy(p))
	heardB := stationIdx(b.HeardBy(p))
	heardC := stationIdx(c.HeardBy(p))
	t.AddRow("A", "s1,s2,s3", stationName(heardA), "s2")
	t.AddRow("B", "s1,s2,s3", stationName(heardB), "-")
	t.AddRow("C", "s1,s2", stationName(heardC), "s1")
	t.Pass = heardA == 1 && heardB == -1 && heardC == 0
	return t, nil
}

func stationIdx(i int, ok bool) int {
	if !ok {
		return -1
	}
	return i
}

// Fig2Cumulative regenerates Figure 2: cumulative interference makes
// the UDG model report a false positive.
func Fig2Cumulative() (*Table, error) {
	m, n, p, err := Fig2Scenario()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "E2",
		Title:      "Figure 2: cumulative interference (UDG false positive)",
		PaperClaim: "UDG: p hears s1; SINR: cumulative interference of s2,s3,s4 prevents reception",
		Headers:    []string{"model", "heard@p", "SINR(s1,p)", "beta"},
	}
	udgHeard := stationIdx(m.HeardBy(p))
	sinrHeard := stationIdx(n.HeardBy(p))
	t.AddRowf("UDG", stationName(udgHeard), "-", "-")
	t.AddRowf("SINR", stationName(sinrHeard), n.SINR(0, p), n.Beta())
	v, err := udg.Compare(m, n, p)
	if err != nil {
		return nil, err
	}
	t.Note("comparator verdict: %v", v)
	t.Pass = udgHeard == 0 && sinrHeard == -1 && v == udg.FalsePositive
	return t, nil
}

// Fig34StepSeries regenerates Figures 3-4: the four-step transmitter
// progression and the per-step UDG/SINR outcomes.
func Fig34StepSeries() (*Table, error) {
	steps, err := RunFig34()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "E3",
		Title:      "Figures 3-4: adding transmitters one at a time",
		PaperClaim: "step1 agree (s1); step2 UDG false negative (SINR keeps s1); step3 UDG false negative (SINR decodes s3); step4 outcomes shift again",
		Headers:    []string{"step", "active", "UDG", "SINR"},
	}
	for _, s := range steps {
		active := ""
		for i, idx := range s.Transmitting {
			if i > 0 {
				active += ","
			}
			active += stationName(idx)
		}
		t.AddRow(
			strconv.Itoa(s.Step), active,
			stationName(s.UDGStation), stationName(s.SINRStation),
		)
	}
	t.Pass = len(steps) == 4 &&
		steps[0].UDGStation == 0 && steps[0].SINRStation == 0 &&
		steps[1].UDGStation == -1 && steps[1].SINRStation == 0 &&
		steps[2].UDGStation == -1 && steps[2].SINRStation == 2 &&
		steps[3].SINRStation != 2
	return t, nil
}

// Fig5NonConvex regenerates Figure 5: with beta < 1, reception zones
// stop being convex. Both the paper-style three-station layout and the
// two-station hole certificate are checked.
func Fig5NonConvex() (*Table, error) {
	t := &Table{
		ID:         "E4",
		Title:      "Figure 5: non-convex zones at beta < 1",
		PaperClaim: "beta = 0.3 < 1 yields clearly non-convex reception zones",
		Headers:    []string{"layout", "maxLineCrossings", "midpointViolations", "nonConvex"},
	}
	rng := rand.New(rand.NewSource(5))

	three, err := Fig5Scenario()
	if err != nil {
		return nil, err
	}
	rep3, err := three.CheckConvexity(0, 80, 300, 12, rng)
	if err != nil {
		return nil, err
	}
	t.AddRowf("3 stations (paper)", rep3.MaxLineCrossings, rep3.MidpointViolations, !rep3.Convex())

	two, err := Fig5TwoStation()
	if err != nil {
		return nil, err
	}
	rep2, err := two.CheckConvexity(0, 80, 300, 15, rng)
	if err != nil {
		return nil, err
	}
	t.AddRowf("2 stations (hole)", rep2.MaxLineCrossings, rep2.MidpointViolations, !rep2.Convex())

	t.Pass = !rep2.Convex() && !rep3.Convex()
	return t, nil
}

// RenderFigure produces the reception map for one of the paper's
// figure scenarios by name ("fig1a", "fig1b", "fig1c", "fig2-udg",
// "fig2-sinr", "fig5") at the given resolution. Used by cmd/sinrmap.
func RenderFigure(name string, width, height int) (*raster.ReceptionMap, error) {
	box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
	switch name {
	case "fig1a", "fig1b", "fig1c":
		a, b, c, err := Fig1Scenario()
		if err != nil {
			return nil, err
		}
		switch name {
		case "fig1a":
			return raster.Render(a, box, width, height)
		case "fig1b":
			return raster.Render(b, box, width, height)
		default:
			return raster.Render(c, box, width, height)
		}
	case "fig2-udg", "fig2-sinr":
		m, n, _, err := Fig2Scenario()
		if err != nil {
			return nil, err
		}
		box = geom.NewBox(geom.Pt(-10, -10), geom.Pt(10, 10))
		if name == "fig2-udg" {
			return raster.Render(m, box, width, height)
		}
		return raster.Render(n, box, width, height)
	case "fig5":
		n, err := Fig5Scenario()
		if err != nil {
			return nil, err
		}
		box = geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
		return raster.Render(n, box, width, height)
	default:
		return nil, errUnknownFigure(name)
	}
}

type errUnknownFigure string

func (e errUnknownFigure) Error() string {
	return "exp: unknown figure " + string(e) + " (want fig1a|fig1b|fig1c|fig2-udg|fig2-sinr|fig5)"
}
