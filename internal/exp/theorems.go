package exp

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// randomUniformNet draws a uniform power network with n stations in a
// 10x10 box, rejecting shared locations for station 0.
func randomUniformNet(gen *workload.Generator, n int, noise, beta float64) (*core.Network, error) {
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	pts, err := gen.UniformSeparated(n, box, 0.05)
	if err != nil {
		return nil, err
	}
	return core.NewUniform(pts, noise, beta)
}

// Theorem1Convexity runs the E5 validation: across station counts and
// thresholds, no convexity certificate fails (Theorem 1).
func Theorem1Convexity(trialsPerCell int) (*Table, error) {
	t := &Table{
		ID:         "E5",
		Title:      "Theorem 1: convexity of reception zones (uniform power, alpha=2, beta>=1)",
		PaperClaim: "every line meets each zone boundary at most twice; zones pass midpoint convexity checks",
		Headers:    []string{"n", "beta", "trials", "maxCrossings", "midpointViolations"},
	}
	t.Pass = true
	rng := rand.New(rand.NewSource(1002))
	for _, n := range []int{2, 4, 8, 16} {
		for _, beta := range []float64{1, 2, 6} {
			gen := workload.NewGenerator(int64(1000*n) + int64(beta*10))
			maxCross, viol := 0, 0
			for trial := 0; trial < trialsPerCell; trial++ {
				noise := 0.02 // keeps beta=1 zones bounded
				net, err := randomUniformNet(gen, n, noise, beta)
				if err != nil {
					return nil, err
				}
				rep, err := net.CheckConvexity(0, 15, 15, 12, rng)
				if err != nil {
					return nil, err
				}
				if rep.MaxLineCrossings > maxCross {
					maxCross = rep.MaxLineCrossings
				}
				viol += rep.MidpointViolations
			}
			t.AddRowf(n, beta, trialsPerCell, maxCross, viol)
			if maxCross > 2 || viol > 0 {
				t.Pass = false
			}
		}
	}
	return t, nil
}

// Theorem2Fatness runs the E6 validation: measured fatness against the
// Theorem 4.2 bound and the Theorem 4.1 delta/Delta sandwich.
func Theorem2Fatness(trialsPerCell int) (*Table, error) {
	t := &Table{
		ID:         "E6",
		Title:      "Theorem 2 / 4.1 / 4.2: fatness of reception zones",
		PaperClaim: "delta, Delta within Theorem 4.1 bounds; phi <= (sqrt(beta)+1)/(sqrt(beta)-1) (Theorem 4.2)",
		Headers: []string{
			"n", "beta", "maxPhi", "bound", "sandwichOK",
		},
	}
	t.Pass = true
	for _, n := range []int{2, 8, 32} {
		for _, beta := range []float64{1.5, 2, 4, 6, 9} {
			gen := workload.NewGenerator(int64(2000*n) + int64(beta*10))
			bound, err := core.FatnessBound(beta)
			if err != nil {
				return nil, err
			}
			maxPhi := 0.0
			sandwichOK := true
			for trial := 0; trial < trialsPerCell; trial++ {
				net, err := randomUniformNet(gen, n, 0.01, beta)
				if err != nil {
					return nil, err
				}
				zb, err := net.TheoremBounds(0)
				if err != nil {
					return nil, err
				}
				z, err := net.Zone(0)
				if err != nil {
					return nil, err
				}
				rMin, rMax, _, _, err := z.MinMaxRadius(96, zb.DeltaLower/1e5)
				if err != nil {
					return nil, err
				}
				if rMin < zb.DeltaLower*(1-1e-6) || rMax > zb.DeltaUpper*(1+1e-6) {
					sandwichOK = false
				}
				if phi := rMax / rMin; phi > maxPhi {
					maxPhi = phi
				}
			}
			t.AddRowf(n, beta, maxPhi, bound, sandwichOK)
			if maxPhi > bound*(1+1e-6) || !sandwichOK {
				t.Pass = false
			}
		}
	}
	t.Note("two-station networks attain the bound exactly (Lemma 4.3 equality at psi=1)")
	return t, nil
}

// StarShapeObs22 runs E9: Lemma 3.1 monotonicity along rays and
// Observation 2.2 (zones inside Voronoi cells).
func StarShapeObs22(trials int) (*Table, error) {
	t := &Table{
		ID:         "E9",
		Title:      "Lemma 3.1 + Observation 2.2: star shape and Voronoi confinement",
		PaperClaim: "SINR increases toward the station along in-zone segments; heard points are nearest-station points",
		Headers:    []string{"check", "trials", "violations"},
	}
	rng := rand.New(rand.NewSource(1003))
	gen := workload.NewGenerator(1004)

	star := 0
	for i := 0; i < trials; i++ {
		net, err := randomUniformNet(gen, 2+rng.Intn(8), rng.Float64()*0.05, 1+rng.Float64()*5)
		if err != nil {
			return nil, err
		}
		v, err := net.StarShapeViolations(0, 10, 10, 10, rng)
		if err != nil {
			return nil, err
		}
		star += v
	}
	t.AddRowf("Lemma 3.1 monotone SINR", trials, star)

	voronoi := 0
	for i := 0; i < trials; i++ {
		net, err := randomUniformNet(gen, 2+rng.Intn(8), rng.Float64()*0.05, 1.1+rng.Float64()*5)
		if err != nil {
			return nil, err
		}
		for k := 0; k < 200; k++ {
			p := geom.Pt(rng.Float64()*12-6, rng.Float64()*12-6)
			h, ok := net.HeardBy(p)
			if !ok {
				continue
			}
			dh := geom.Dist2(net.Station(h), p)
			for j := 0; j < net.NumStations(); j++ {
				if j != h && geom.Dist2(net.Station(j), p) < dh-1e-12 {
					voronoi++
				}
			}
		}
	}
	t.AddRowf("Observation 2.2 Voronoi confinement", trials*200, voronoi)
	t.Pass = star == 0 && voronoi == 0
	return t, nil
}

// SturmSection32 runs E10: the three-station Sturm machinery of
// Section 3.2 — SC bounds and the at-most-two-roots conclusion.
func SturmSection32(trials int) (*Table, error) {
	t := &Table{
		ID:         "E10",
		Title:      "Section 3.2: Sturm analysis of the three-station quartic",
		PaperClaim: "SC(+inf) >= 1 (Prop 3.7), SC(-inf) <= 3 (Prop 3.8), hence <= 2 distinct real roots (Lemma 3.3)",
		Headers:    []string{"trials", "minSC+inf", "maxSC-inf", "maxDistinctRoots"},
	}
	rng := rand.New(rand.NewSource(1005))
	minPos, maxNeg, maxRoots := 99, 0, 0
	for i := 0; i < trials; i++ {
		s1 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		s2 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		rep, err := core.ThreeStationAnalysis(s1, s2)
		if err != nil {
			return nil, err
		}
		if rep.SCPosInf < minPos {
			minPos = rep.SCPosInf
		}
		if rep.SCNegInf > maxNeg {
			maxNeg = rep.SCNegInf
		}
		if rep.DistinctPos > maxRoots {
			maxRoots = rep.DistinctPos
		}
	}
	t.AddRowf(trials, minPos, maxNeg, maxRoots)
	t.Pass = minPos >= 1 && maxNeg <= 3 && maxRoots <= 2
	return t, nil
}

// MergeConstructions runs the Lemma 3.10 and Section 3.4 constructions
// as an experiment (the induction engines behind Theorem 1).
func MergeConstructions(trials int) (*Table, error) {
	t := &Table{
		ID:         "E10b",
		Title:      "Lemma 3.10 merge + Section 3.4 noise removal",
		PaperClaim: "merged station matches pair energy at anchors, dominates on the segment; noise station preserves SINR at anchors",
		Headers:    []string{"construction", "instances", "violations"},
	}
	rng := rand.New(rand.NewSource(1006))

	mergeViol, mergeOK := 0, 0
	for i := 0; i < trials*4 && mergeOK < trials; i++ {
		s0 := geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		s1 := geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		s2 := geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		p1 := geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		p2 := geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		if geom.Dist(p1, p2) < 0.1 {
			continue
		}
		e := func(s, p geom.Point) float64 { return 1 / geom.Dist2(s, p) }
		if e(s0, p1) < e(s1, p1)+e(s2, p1) || e(s0, p2) < e(s1, p2)+e(s2, p2) {
			continue
		}
		mergeOK++
		sStar, err := core.MergeStations(s1, s2, p1, p2)
		if err != nil {
			mergeViol++
			continue
		}
		for k := 0; k <= 10; k++ {
			q := geom.Lerp(p1, p2, float64(k)/10)
			if e(sStar, q) < (e(s1, q)+e(s2, q))*(1-1e-9) {
				mergeViol++
				break
			}
		}
	}
	t.AddRowf("Lemma 3.10 merge", mergeOK, mergeViol)

	noiseViol, noiseOK := 0, 0
	net, err := core.NewUniform(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(0, 5)}, 0.04, 2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < trials*6 && noiseOK < trials; i++ {
		p1 := geom.PolarPoint(geom.Origin, rng.Float64()*2, rng.Float64()*6.28)
		p2 := geom.PolarPoint(geom.Origin, rng.Float64()*2, rng.Float64()*6.28)
		if !net.Heard(0, p1) || !net.Heard(0, p2) || geom.Dist(p1, p2) < 0.05 {
			continue
		}
		noiseOK++
		reduced, _, err := net.RemoveNoise(0, p1, p2)
		if err != nil {
			noiseViol++
			continue
		}
		for _, p := range []geom.Point{p1, p2} {
			a, b := net.SINR(0, p), reduced.SINR(0, p)
			if a < b*(1-1e-6) || a > b*(1+1e-6) {
				noiseViol++
			}
		}
	}
	t.AddRowf("Section 3.4 noise removal", noiseOK, noiseViol)
	t.Pass = mergeViol == 0 && noiseViol == 0
	if mergeOK < trials/2 {
		t.Note("warning: only %d merge instances satisfied preconditions", mergeOK)
	}
	return t, nil
}
