package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// HotPathEps is the Theorem 3 performance parameter of the E18
// hot-path comparison. It is coarser than the serving default so the
// n=1024 build stays tractable on one machine; the query-path speedup
// being measured is insensitive to it.
const HotPathEps = 0.2

// HotPathBenchRow is one cell of the E18 hot-path comparison: a
// (stations, workload) pair measuring the indexed locate path against
// the full-scan baseline on the same cached locator. The JSON tags
// define the BENCH_hotpath.json artifact schema — the committed perf
// trajectory the CI bench gate guards.
type HotPathBenchRow struct {
	Workload        string  `json:"workload"`
	Stations        int     `json:"stations"`
	Queries         int     `json:"queries"`
	Eps             float64 `json:"eps"`
	BuildNanos      int64   `json:"build_ns"`
	ScanNanos       int64   `json:"scan_ns_per_op"`
	IndexedNanos    int64   `json:"indexed_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	IndexedAllocs   float64 `json:"indexed_allocs_per_op"`
	NoReceptionFrac float64 `json:"no_reception_frac"`
	Mismatches      int     `json:"mismatches"`
	IndexCells      int     `json:"index_cells"`
	IndexMaxPerCell int     `json:"index_max_per_cell"`
}

// hotPathNet builds a constant-density uniform network: the box side
// grows with sqrt(n), so zone sizes — and hence per-query work — stay
// comparable across n and the measured scaling is the algorithms',
// not the geometry's. This is also the realistic serving regime (a
// larger deployment covers a larger area).
func hotPathNet(gen *workload.Generator, n int) (*core.Network, geom.Box, error) {
	side := 3 * math.Sqrt(float64(n))
	box := geom.NewBox(geom.Pt(-side/2, -side/2), geom.Pt(side/2, side/2))
	pts, err := gen.UniformSeparated(n, box, 0.05)
	if err != nil {
		return nil, box, err
	}
	net, err := core.NewUniform(pts, 0.01, 3)
	return net, box, err
}

// timeLocate measures fn once per point, repeating the whole point
// set until the run is long enough to time stably, and returns the
// per-op cost plus the allocations per op observed during the timed
// loop (the hot path must show zero).
func timeLocate(pts []geom.Point, fn func(geom.Point) core.Location) (perOp time.Duration, allocsPerOp float64) {
	// Warm-up pass (faults in code paths, steadies the branch
	// predictor) and calibration.
	t0 := time.Now()
	for _, p := range pts {
		fn(p)
	}
	once := time.Since(t0)
	reps := 1
	if target := 50 * time.Millisecond; once < target {
		reps = int(target / (once + 1))
		if reps > 200 {
			reps = 200
		}
		if reps < 1 {
			reps = 1
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 = time.Now()
	for r := 0; r < reps; r++ {
		for _, p := range pts {
			fn(p)
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	ops := reps * len(pts)
	return elapsed / time.Duration(ops), float64(after.Mallocs-before.Mallocs) / float64(ops)
}

// MeasureHotPath runs the E18 measurement: for each network size a
// constant-density network is built once (timed), then the indexed
// Locate and the full-scan LocateScan answer the uniform, hotspot and
// mobility workloads on the same locator. Every indexed answer is
// checked against the scan's (Mismatches must be zero), and the
// indexed loop's allocations are counted (the hot path must not
// allocate).
func MeasureHotPath(sizes []int, queries, workers int) ([]HotPathBenchRow, error) {
	var rows []HotPathBenchRow
	for _, n := range sizes {
		gen := workload.NewGenerator(int64(7000 * n))
		net, box, err := hotPathNet(gen, n)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		loc, err := net.BuildLocatorOpts(HotPathEps, core.BuildOptions{Workers: workers})
		if err != nil {
			return nil, err
		}
		build := time.Since(t0)
		stats := loc.SpatialIndex().Stats()

		loads := resolverWorkloads(gen, queries, box)
		names := make([]string, 0, len(loads))
		for name := range loads {
			names = append(names, name)
		}
		sort.Strings(names)

		for _, name := range names {
			pts := loads[name]
			mismatches, noRec := 0, 0
			for _, p := range pts {
				got, want := loc.Locate(p), loc.LocateScan(p)
				if got != want {
					mismatches++
				}
				if want.Kind == core.NoReception {
					noRec++
				}
			}
			scanPerOp, _ := timeLocate(pts, loc.LocateScan)
			indexedPerOp, allocs := timeLocate(pts, loc.Locate)
			speedup := 0.0
			if indexedPerOp > 0 {
				speedup = float64(scanPerOp) / float64(indexedPerOp)
			}
			rows = append(rows, HotPathBenchRow{
				Workload:        name,
				Stations:        n,
				Queries:         len(pts),
				Eps:             HotPathEps,
				BuildNanos:      build.Nanoseconds(),
				ScanNanos:       scanPerOp.Nanoseconds(),
				IndexedNanos:    indexedPerOp.Nanoseconds(),
				Speedup:         speedup,
				IndexedAllocs:   allocs,
				NoReceptionFrac: float64(noRec) / float64(len(pts)),
				Mismatches:      mismatches,
				IndexCells:      stats.Cols * stats.Rows,
				IndexMaxPerCell: stats.MaxPerCell,
			})
		}
	}
	return rows, nil
}

// WriteHotPathBenchJSON writes the E18 rows as the BENCH_hotpath.json
// artifact (an indented JSON array).
func WriteHotPathBenchJSON(path string, rows []HotPathBenchRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// HotPathComparison runs E18: the sharded-spatial-index locate path
// against the full-scan baseline on the same Theorem 3 locator,
// across network sizes at constant station density and the three
// standard workloads. The shape checks are the PR's contract: indexed
// answers identical to the scan's on every point, no allocations on
// the indexed hot path, and at production sizes (n >= 256) at least a
// 5x speedup over the scan. jsonPath, when non-empty, receives the
// BENCH_hotpath.json artifact.
func HotPathComparison(workers int, sizes []int, queries int, jsonPath string) (*Table, error) {
	t := &Table{
		ID:         "E18",
		Title:      "Sharded spatial index: locate hot path vs full scan",
		PaperClaim: "grid-cell candidate lookup + kd-tree residual filter answers identically to the scan, allocation-free, and ~O(1) per query vs the scan's O(n)",
		Headers:    []string{"workload", "n", "build", "scan/op", "indexed/op", "speedup", "allocs/op", "H-frac", "mismatch"},
	}
	rows, err := MeasureHotPath(sizes, queries, workers)
	if err != nil {
		return nil, err
	}
	t.Pass = true
	for _, r := range rows {
		t.AddRow(
			r.Workload,
			fmt.Sprintf("%d", r.Stations),
			time.Duration(r.BuildNanos).Round(time.Millisecond).String(),
			time.Duration(r.ScanNanos).String(),
			time.Duration(r.IndexedNanos).String(),
			fmt.Sprintf("%.1fx", r.Speedup),
			fmt.Sprintf("%.3f", r.IndexedAllocs),
			fmt.Sprintf("%.2f", r.NoReceptionFrac),
			fmt.Sprintf("%d", r.Mismatches),
		)
		if r.Mismatches != 0 || r.IndexedAllocs > 0.01 {
			t.Pass = false
		}
		if r.Stations >= 256 && r.Speedup < 5 {
			t.Pass = false
		}
	}
	if jsonPath != "" {
		if err := WriteHotPathBenchJSON(jsonPath, rows); err != nil {
			return nil, err
		}
		t.Note("wrote %s (%d rows)", jsonPath, len(rows))
	}
	t.Note("scan = LocateScan (O(n) baseline); indexed = Locate via the sharded spatial index; identical answers required")
	return t, nil
}
