package exp

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID:         "T0",
		Title:      "demo",
		PaperClaim: "claim",
		Headers:    []string{"a", "bb"},
		Pass:       true,
	}
	tbl.AddRow("1", "2")
	tbl.AddRowf(3.14159, 42)
	tbl.Note("note %d", 7)
	s := tbl.String()
	for _, want := range []string{"T0", "demo", "claim", "PASS", "3.142", "42", "note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	tbl.Pass = false
	if !strings.Contains(tbl.String(), "FAIL") {
		t.Error("expected FAIL marker")
	}
}

func TestFig1Reception(t *testing.T) {
	tbl, err := Fig1Reception()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("Figure 1 story does not reproduce:\n%s", tbl)
	}
}

func TestFig2Cumulative(t *testing.T) {
	tbl, err := Fig2Cumulative()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("Figure 2 story does not reproduce:\n%s", tbl)
	}
}

func TestFig34StepSeries(t *testing.T) {
	tbl, err := Fig34StepSeries()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("Figures 3-4 progression does not reproduce:\n%s", tbl)
	}
}

func TestFig5NonConvex(t *testing.T) {
	tbl, err := Fig5NonConvex()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("Figure 5 non-convexity does not reproduce:\n%s", tbl)
	}
}

func TestTheorem1Convexity(t *testing.T) {
	tbl, err := Theorem1Convexity(2)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("Theorem 1 validation failed:\n%s", tbl)
	}
}

func TestTheorem2Fatness(t *testing.T) {
	tbl, err := Theorem2Fatness(2)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("Theorem 2 validation failed:\n%s", tbl)
	}
}

func TestTheorem3QDS(t *testing.T) {
	if testing.Short() {
		t.Skip("QDS build sweep is slow")
	}
	tbl, err := Theorem3QDS()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("Theorem 3 validation failed:\n%s", tbl)
	}
}

func TestStarShapeObs22(t *testing.T) {
	tbl, err := StarShapeObs22(3)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("E9 validation failed:\n%s", tbl)
	}
}

func TestSturmSection32(t *testing.T) {
	tbl, err := SturmSection32(50)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("E10 validation failed:\n%s", tbl)
	}
}

func TestMergeConstructions(t *testing.T) {
	tbl, err := MergeConstructions(20)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("E10b validation failed:\n%s", tbl)
	}
}

func TestGridAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("grid ablation sweep is slow")
	}
	tbl, err := GridAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("E11 validation failed:\n%s", tbl)
	}
}

func TestGeneralAlphaConvexity(t *testing.T) {
	tbl, err := GeneralAlphaConvexity(2)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("E12 validation failed:\n%s", tbl)
	}
}

func TestNonUniformPower(t *testing.T) {
	tbl, err := NonUniformPower()
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("E13 validation failed:\n%s", tbl)
	}
}

func TestRenderFigureNames(t *testing.T) {
	for _, name := range []string{"fig1a", "fig1b", "fig1c", "fig2-udg", "fig2-sinr", "fig5"} {
		rm, err := RenderFigure(name, 40, 40)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rm.Width != 40 || rm.Height != 40 {
			t.Errorf("%s: size %dx%d", name, rm.Width, rm.Height)
		}
	}
	if _, err := RenderFigure("nope", 10, 10); err == nil {
		t.Error("unknown figure must error")
	}
}

func TestMeasureQueryScalingSmall(t *testing.T) {
	timings, err := MeasureQueryScaling([]int{4, 8}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 2 {
		t.Fatalf("timings = %v", timings)
	}
	for _, tm := range timings {
		if tm.BuildTime <= 0 || tm.NaivePerOp <= 0 || tm.DSPerOp <= 0 {
			t.Errorf("non-positive timing: %+v", tm)
		}
	}
}

func TestScheduling(t *testing.T) {
	tbl, err := Scheduling(2)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("E14 validation failed:\n%s", tbl)
	}
}

func TestCommunicationGraphExperiment(t *testing.T) {
	tbl, err := CommunicationGraph(2)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Pass {
		t.Fatalf("E15 validation failed:\n%s", tbl)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	reg := Registry(1)
	if len(reg) != 21 {
		t.Fatalf("registry has %d experiments, want 21 (E1-E20 plus E10b)", len(reg))
	}
	for _, e := range reg {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("malformed entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestResolverComparisonShape runs E17 small and checks the exact
// backends report zero disagreement while every (workload, backend)
// cell is present.
func TestResolverComparisonShape(t *testing.T) {
	rows, err := MeasureResolverComparison(8, 300, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 4 backends x 3 workloads", len(rows))
	}
	for _, r := range rows {
		if r.Resolver != "udg" && r.Disagree != 0 {
			t.Fatalf("%s/%s disagrees with exact on %.4f of points", r.Workload, r.Resolver, r.Disagree)
		}
		if r.QPS <= 0 || r.Queries == 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	out := t.TempDir() + "/BENCH_resolvers.json"
	if err := WriteResolverBenchJSON(out, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var back []ResolverBenchRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("artifact round-trip lost rows: %d != %d", len(back), len(rows))
	}
}

// TestHotPathComparisonShape checks the E18 measurement: identical
// indexed/scan answers, an allocation-free indexed loop, and a sane
// artifact round-trip.
func TestHotPathComparisonShape(t *testing.T) {
	rows, err := MeasureHotPath([]int{8, 16}, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 2 sizes x 3 workloads", len(rows))
	}
	for _, r := range rows {
		if r.Mismatches != 0 {
			t.Fatalf("%s/n=%d: indexed and scan paths disagree on %d points", r.Workload, r.Stations, r.Mismatches)
		}
		if r.IndexedAllocs > 0.01 {
			t.Fatalf("%s/n=%d: indexed hot path allocates %.3f/op", r.Workload, r.Stations, r.IndexedAllocs)
		}
		if r.ScanNanos <= 0 || r.IndexedNanos <= 0 || r.IndexCells <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	out := t.TempDir() + "/BENCH_hotpath.json"
	if err := WriteHotPathBenchJSON(out, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var back []HotPathBenchRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("artifact round-trip lost rows: %d != %d", len(back), len(rows))
	}
}

// TestDynamicChurnShape checks the E19 measurement small: every
// (size, process) cell present, zero correctness mismatches against
// the independent exact baseline, live timing on both sides, and a
// sane artifact round-trip.
func TestDynamicChurnShape(t *testing.T) {
	rows, err := MeasureDynamicChurn([]int{8, 16}, 12, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 2 sizes x 4 churn processes", len(rows))
	}
	for _, r := range rows {
		if r.Mismatches != 0 {
			t.Fatalf("%s/n=%d: %d query mismatches vs the from-scratch baseline", r.Churn, r.Stations, r.Mismatches)
		}
		if r.ApplyNanos <= 0 || r.RebuildNanos <= 0 || r.Checkpoints == 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Incremental+r.Rebuilds != r.Events {
			t.Fatalf("%s/n=%d: %d incremental + %d rebuilds != %d events",
				r.Churn, r.Stations, r.Incremental, r.Rebuilds, r.Events)
		}
	}
	out := t.TempDir() + "/BENCH_dynamic.json"
	if err := WriteDynamicBenchJSON(out, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var back []DynamicBenchRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("artifact round-trip lost rows: %d != %d", len(back), len(rows))
	}
}

// TestSchedComparisonShape checks the E20 measurement small: every
// (size, scheduler) cell present, zero validation or incremental-vs-
// scan mismatches, live build timing under both models, a feasibility
// race on the greedy rows, and a sane artifact round-trip.
func TestSchedComparisonShape(t *testing.T) {
	rows, err := MeasureSched([]int{32, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 2 sizes x 3 schedulers", len(rows))
	}
	for _, r := range rows {
		if r.Mismatches != 0 {
			t.Fatalf("%s/n=%d: %d mismatches between the incremental engine and the scan oracle",
				r.Scheduler, r.Links, r.Mismatches)
		}
		if r.SINRSlots <= 0 || r.ProtocolSlots <= 0 || r.SINRBuildNanos <= 0 || r.ProtoBuildNanos <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Scheduler == "greedy" {
			if r.FeasIncNanos <= 0 || r.FeasScanNanos <= 0 || r.ProbeSlotSize <= 0 {
				t.Fatalf("greedy row missing the feasibility race: %+v", r)
			}
		} else if r.FeasIncNanos != 0 {
			t.Fatalf("%s row carries a feasibility race: %+v", r.Scheduler, r)
		}
	}
	out := t.TempDir() + "/BENCH_sched.json"
	if err := WriteSchedBenchJSON(out, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var back []SchedBenchRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("artifact round-trip lost rows: %d != %d", len(back), len(rows))
	}
}
