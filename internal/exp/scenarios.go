package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/udg"
)

// Fig1Receiver is the fixed receiver point of the Figure 1 scenarios.
var Fig1Receiver = geom.Pt(0, 0)

// Fig1Scenario builds the three-station networks of Figure 1. The
// layout is chosen so the paper's story plays out exactly:
//
//	(A) s1 is far away           -> the receiver hears s2,
//	(B) s1 moves close           -> the receiver hears nobody,
//	(C) same as (B), s3 silent   -> the receiver hears s1.
//
// The returned networks use stations indexed [s1, s2, s3] for A and B,
// and [s1, s2] for C (s3 silenced via Subnetwork).
func Fig1Scenario() (a, b, c *core.Network, err error) {
	const (
		beta  = 2
		noise = 0.02
	)
	s2 := geom.Pt(1.5, 0)
	s3 := geom.Pt(-1.9, 2.53)
	s1Far := geom.Pt(-5, 0)
	s1Near := geom.Pt(-1, 0)

	a, err = core.NewUniform([]geom.Point{s1Far, s2, s3}, noise, beta)
	if err != nil {
		return nil, nil, nil, err
	}
	b, err = core.NewUniform([]geom.Point{s1Near, s2, s3}, noise, beta)
	if err != nil {
		return nil, nil, nil, err
	}
	c, err = b.Subnetwork([]int{0, 1})
	if err != nil {
		return nil, nil, nil, err
	}
	return a, b, c, nil
}

// Fig2Scenario builds the cumulative-interference example of Figure 2:
// four stations where the receiver p is adjacent to s1 in the UDG
// sense but the combined energy of the three out-of-range stations
// pushes the SINR below threshold.
func Fig2Scenario() (*udg.Model, *core.Network, geom.Point, error) {
	stations := []geom.Point{
		geom.Pt(0, 0),  // s1
		geom.Pt(5, 5),  // s2
		geom.Pt(5, -5), // s3
		geom.Pt(-5, 5), // s4
	}
	p := geom.Pt(3.2, 0)
	m, err := udg.NewUDG(stations, 4)
	if err != nil {
		return nil, nil, geom.Point{}, err
	}
	n, err := core.NewUniform(stations, 0, 2)
	if err != nil {
		return nil, nil, geom.Point{}, err
	}
	return m, n, p, nil
}

// Fig34Step describes one step of the Figures 3-4 progression.
type Fig34Step struct {
	Step         int
	Transmitting []int // indices of active stations
	UDGStation   int   // station heard under UDG (-1 for none)
	SINRStation  int   // station heard under SINR (-1 for none)
}

// Fig34Scenario builds the station set and receiver of Figures 3-4:
// transmitters are enabled one at a time (s1; +s2; +s3; +s4) and the
// reception outcome under both models is recorded per step. The
// paper's qualitative sequence:
//
//	step 1: both models hear s1 (Figure 3);
//	step 2: UDG reports collision, SINR still decodes s1 (false negative);
//	step 3: UDG still collides, SINR now decodes the nearby s3;
//	step 4: the added interferer kills s3 in SINR too — the models'
//	        answers change shape once more (Figure 4(E)/(F)).
func Fig34Scenario() (stations []geom.Point, p geom.Point, udgRadius float64) {
	stations = []geom.Point{
		geom.Pt(0, 0),        // s1
		geom.Pt(4, 0),        // s2
		geom.Pt(0.65, -0.15), // s3: very close to the receiver
		geom.Pt(0.55, -0.25), // s4: even closer, jamming s3
	}
	return stations, geom.Pt(0.5, 0), 4
}

// RunFig34 executes the four steps and returns the outcomes.
func RunFig34() ([]Fig34Step, error) {
	stations, p, radius := Fig34Scenario()
	m, err := udg.NewUDG(stations, radius)
	if err != nil {
		return nil, err
	}
	var steps []Fig34Step
	for step := 1; step <= 4; step++ {
		keep := make([]int, step)
		active := make(map[int]bool, step)
		for i := 0; i < step; i++ {
			keep[i] = i
			active[i] = true
		}
		sub, err := core.NewUniform(stations[:step], 0.02, 2)
		if err != nil {
			return nil, err
		}
		st := Fig34Step{Step: step, Transmitting: keep, UDGStation: -1, SINRStation: -1}
		for i := 0; i < step; i++ {
			if m.HeardAmong(i, p, active) {
				st.UDGStation = i
				break
			}
		}
		if i, ok := sub.HeardBy(p); ok {
			st.SINRStation = i
		}
		steps = append(steps, st)
	}
	return steps, nil
}

// Fig5Scenario builds a beta < 1 network in the spirit of Figure 5
// (uniform power, alpha = 2, beta = 0.3, noise low enough that zones
// wrap around interferers), whose reception zones are non-convex.
func Fig5Scenario() (*core.Network, error) {
	return core.NewUniform(
		[]geom.Point{geom.Pt(-2, 0), geom.Pt(2, 2), geom.Pt(2, -2)},
		0.005, 0.3,
	)
}

// Fig5TwoStation is the sharpest non-convexity certificate: two
// stations with beta < 1, where zone 0 has a hole around the
// interferer so the x-axis crosses its boundary four times.
func Fig5TwoStation() (*core.Network, error) {
	return core.NewUniform([]geom.Point{geom.Pt(-2, 0), geom.Pt(2, 0)}, 0.005, 0.3)
}

// stationName formats a station index the way the paper labels them
// (1-based: s1, s2, ...), with "-" for none.
func stationName(idx int) string {
	if idx < 0 {
		return "-"
	}
	return fmt.Sprintf("s%d", idx+1)
}
