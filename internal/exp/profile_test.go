package exp

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func TestProfileQDSPieces(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling only")
	}
	gen := workload.NewGenerator(48000)
	net, err := randomUniformNet(gen, 16, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	q, err := net.BuildQDS(0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BuildQDS eps=0.05: %v, |T?|=%d cols=%d", time.Since(start), q.NumUncertainCells(), q.NumColumns())
	start = time.Now()
	bad, err := q.VerifyColumns()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("VerifyColumns: %v (bad=%d)", time.Since(start), bad)
	z, _ := net.Zone(0)
	start = time.Now()
	if _, err := z.ApproxArea(720, q.Gamma()/16); err != nil {
		t.Fatal(err)
	}
	t.Logf("ApproxArea: %v", time.Since(start))
}
