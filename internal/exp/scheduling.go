package exp

import (
	"repro/internal/geom"
	"repro/internal/sched"
	"repro/internal/workload"
)

// randomLinks draws n links with the given length range inside a box.
func randomLinks(gen *workload.Generator, n int, box geom.Box, minLen, maxLen float64) []sched.Link {
	links := make([]sched.Link, n)
	senders := gen.UniformInBox(n, box)
	for i, s := range senders {
		length := minLen + gen.Float64()*(maxLen-minLen)
		theta := gen.Float64() * 2 * 3.141592653589793
		links[i] = sched.Link{Sender: s, Receiver: geom.PolarPoint(s, length, theta)}
	}
	return links
}

// Scheduling runs E14: greedy link scheduling under the SINR model
// versus the protocol model on identical instances — the application
// area (transmission scheduling) the paper's introduction uses to
// motivate algorithmically usable SINR results, and where references
// [8], [12], [13] show graph models mispredict capacity.
func Scheduling(trials int) (*Table, error) {
	t := &Table{
		ID:         "E14",
		Title:      "Application: greedy link scheduling, SINR vs protocol model",
		PaperClaim: "graph-based models serialize links the physical model can pack together (Sec. 1.1, refs [8,12,13])",
		Headers: []string{
			"n links", "density", "SINR slots", "protocol slots", "SINR shorter",
		},
	}
	t.Pass = true
	type cell struct {
		n    int
		side float64
		name string
	}
	cells := []cell{
		{20, 30, "sparse"},
		{20, 12, "dense"},
		{60, 40, "sparse"},
		{60, 16, "dense"},
	}
	for _, c := range cells {
		sinrTotal, protoTotal, shorter := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			gen := workload.NewGenerator(int64(c.n*1000) + int64(c.side*10) + int64(trial))
			box := geom.NewBox(geom.Pt(0, 0), geom.Pt(c.side, c.side))
			links := randomLinks(gen, c.n, box, 0.5, 1.5)

			sp, err := sched.NewSINRProblem(links, 0.0001, 2)
			if err != nil {
				return nil, err
			}
			pp, err := sched.NewProtocolProblem(links, 1.5, 3)
			if err != nil {
				return nil, err
			}
			order := sched.ByLength(links, true)
			ss, err := sched.Greedy(sp, order)
			if err != nil {
				return nil, err
			}
			if err := ss.Validate(sp); err != nil {
				return nil, err
			}
			ps, err := sched.Greedy(pp, order)
			if err != nil {
				return nil, err
			}
			if err := ps.Validate(pp); err != nil {
				return nil, err
			}
			sinrTotal += ss.NumSlots()
			protoTotal += ps.NumSlots()
			if ss.NumSlots() < ps.NumSlots() {
				shorter++
			} else if ss.NumSlots() > ps.NumSlots() {
				shorter--
			}
		}
		t.AddRowf(c.n, c.name, sinrTotal, protoTotal, shorter)
		// Shape: summed over trials, SINR schedules must not be longer.
		if sinrTotal > protoTotal {
			t.Pass = false
		}
	}
	t.Note("slots summed over %d trials per row; 'SINR shorter' counts trials won minus lost", trials)
	return t, nil
}
