package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/workload"
)

// DefaultDynamicSizes is the network-size axis of the E19 churn
// comparison — the same constant-density axis as E18, up to 1024
// stations. The committed BENCH_dynamic.json trajectory is produced
// at these sizes; CI and tests pass a smaller axis.
var DefaultDynamicSizes = []int{16, 64, 256, 1024}

// DefaultDynamicEvents is the churn-trace length per (size, process)
// cell of E19.
const DefaultDynamicEvents = 64

// DefaultDynamicQueries is the per-checkpoint correctness-probe count
// of E19.
const DefaultDynamicQueries = 512

// DynamicBenchRow is one cell of the E19 churn comparison: a
// (stations, churn process) pair measuring the incremental Apply
// against the from-scratch engine rebuild it replaces, plus query
// correctness against an independent exact baseline at checkpoints
// along the trace. The JSON tags define the BENCH_dynamic.json
// artifact schema.
type DynamicBenchRow struct {
	Churn         string  `json:"churn"`
	Stations      int     `json:"stations"`
	Events        int     `json:"events"`
	ApplyNanos    int64   `json:"apply_ns_per_event"`
	RebuildNanos  int64   `json:"rebuild_ns_per_event"`
	Speedup       float64 `json:"speedup"`
	Incremental   int     `json:"incremental_applies"`
	Rebuilds      int     `json:"amortized_rebuilds"`
	GridDisabled  bool    `json:"grid_disabled,omitempty"`
	Checkpoints   int     `json:"checkpoints"`
	QueriesPerCkp int     `json:"queries_per_checkpoint"`
	Mismatches    int     `json:"mismatches"`
	FinalStations int     `json:"final_stations"`
}

// dynamicChurnWeights maps the E19 churn-process axis to
// (arrive, depart, power) weights.
var dynamicChurnProcesses = []struct {
	name          string
	arr, dep, pow float64
}{
	{"arrive", 1, 0, 0},
	{"depart", 0, 1, 0},
	{"power", 0, 0, 1},
	{"mix", 1, 1, 1},
}

// dynamicTruth answers one probe exactly and independently of the
// engine under test: the Observation 2.2 reduction over a fresh
// kd-tree for uniform beta > 1 station sets, the full SINR scan
// otherwise.
func dynamicTruth(net *core.Network, tree *kdtree.Tree, p geom.Point) core.Location {
	if net.IsUniform() && net.Beta() > 1 {
		return net.VoronoiLocate(p, tree)
	}
	return net.NaiveLocate(p)
}

// median returns the median of a duration sample.
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// MeasureDynamicChurn runs the E19 measurement: for each network size
// a constant-density network seeds a dynamic engine, a churn trace of
// single-station deltas (per process: arrivals, departures, power
// walks, and their mix) is applied event by event, and each event is
// timed twice — the incremental Apply, and the from-scratch engine
// rebuild (core network + kd-tree + cover boxes + grid) a static
// architecture would pay for the same final station set. At
// checkpoints along the trace every probe query is checked against an
// independently computed exact answer; Mismatches must be zero.
func MeasureDynamicChurn(sizes []int, events, queries int) ([]DynamicBenchRow, error) {
	var rows []DynamicBenchRow
	for _, n := range sizes {
		for _, proc := range dynamicChurnProcesses {
			gen := workload.NewGenerator(int64(11000*n) + int64(len(proc.name)))
			net, box, err := hotPathNet(gen, n)
			if err != nil {
				return nil, err
			}
			dyn, err := dynamic.New(net)
			if err != nil {
				return nil, err
			}
			trace := gen.ChurnTrace(n, events, box, proc.arr, proc.dep, proc.pow, 0.25)
			probes := gen.QueryPoints(queries, box)
			// The exact scan is O(n^2) per no-reception probe; cap the
			// checkpoint cost where the scan is the baseline.
			checkQueries := queries
			if proc.pow > 0 && n >= 256 {
				checkQueries = queries / 4
			}
			every := events / 8
			if every < 1 {
				every = 1
			}

			row := DynamicBenchRow{
				Churn: proc.name, Stations: n, Events: len(trace),
				QueriesPerCkp: checkQueries,
			}
			applyTimes := make([]time.Duration, 0, len(trace))
			rebuildTimes := make([]time.Duration, 0, len(trace))
			for evi, ev := range trace {
				var delta dynamic.Delta
				switch ev.Kind {
				case workload.ChurnArrive:
					delta = dynamic.Delta{Add: []dynamic.Station{{Pos: ev.Pos, Power: ev.Power}}}
				case workload.ChurnDepart:
					delta = dynamic.Delta{Remove: []int{ev.Station}}
				case workload.ChurnPower:
					delta = dynamic.Delta{SetPower: []dynamic.PowerUpdate{{Station: ev.Station, Power: ev.Power}}}
				}
				t0 := time.Now()
				snap, err := dyn.Apply(delta)
				applyTimes = append(applyTimes, time.Since(t0))
				if err != nil {
					return nil, fmt.Errorf("E19 %s n=%d event %d: %w", proc.name, n, evi, err)
				}
				if snap.ApplyStats().Path == dynamic.PathRebuild {
					row.Rebuilds++
				} else {
					row.Incremental++
				}

				// The from-scratch baseline: rebuild the whole engine on
				// the same final station set.
				cur := snap.Network()
				pts := cur.Stations()
				powers := make([]float64, cur.NumStations())
				for i := range powers {
					powers[i] = cur.Power(i)
				}
				t0 = time.Now()
				scratchNet, err := core.NewNetwork(pts, cur.Noise(), cur.Beta(),
					core.WithAlpha(cur.Alpha()), core.WithPowers(powers))
				if err != nil {
					return nil, err
				}
				if _, err := dynamic.New(scratchNet); err != nil {
					return nil, err
				}
				rebuildTimes = append(rebuildTimes, time.Since(t0))

				if evi%every == 0 || evi == len(trace)-1 {
					row.Checkpoints++
					tree := kdtree.New(pts)
					for _, p := range probes[:checkQueries] {
						want := dynamicTruth(scratchNet, tree, p)
						if got := snap.Locate(p); got != want {
							row.Mismatches++
						}
					}
					if !snap.GridEnabled() {
						row.GridDisabled = true
					}
					row.FinalStations = snap.NumStations()
				}
			}
			row.ApplyNanos = medianDuration(applyTimes).Nanoseconds()
			row.RebuildNanos = medianDuration(rebuildTimes).Nanoseconds()
			if row.ApplyNanos > 0 {
				row.Speedup = float64(row.RebuildNanos) / float64(row.ApplyNanos)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteDynamicBenchJSON writes the E19 rows as the BENCH_dynamic.json
// artifact (an indented JSON array).
func WriteDynamicBenchJSON(path string, rows []DynamicBenchRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DynamicChurnComparison runs E19: incremental epoch maintenance
// against from-scratch rebuild under station churn, across network
// sizes at constant density and the four churn processes. The shape
// checks are the dynamic subsystem's contract: zero query mismatches
// against the independent exact baseline at every checkpoint, and — at
// production size (n >= 1024) — at least a 5x speedup of the
// incremental Apply over the full rebuild for single-station deltas.
// jsonPath, when non-empty, receives the BENCH_dynamic.json artifact.
func DynamicChurnComparison(sizes []int, events, queries int, jsonPath string) (*Table, error) {
	t := &Table{
		ID:         "E19",
		Title:      "Dynamic churn: incremental epoch apply vs full rebuild",
		PaperClaim: "copy-on-write delta maintenance preserves exact answers under churn at a fraction of the per-event rebuild cost",
		Headers:    []string{"churn", "n", "apply/ev", "rebuild/ev", "speedup", "inc", "reb", "mismatch", "final n"},
	}
	rows, err := MeasureDynamicChurn(sizes, events, queries)
	if err != nil {
		return nil, err
	}
	t.Pass = true
	for _, r := range rows {
		t.AddRow(
			r.Churn,
			fmt.Sprintf("%d", r.Stations),
			time.Duration(r.ApplyNanos).String(),
			time.Duration(r.RebuildNanos).String(),
			fmt.Sprintf("%.1fx", r.Speedup),
			fmt.Sprintf("%d", r.Incremental),
			fmt.Sprintf("%d", r.Rebuilds),
			fmt.Sprintf("%d", r.Mismatches),
			fmt.Sprintf("%d", r.FinalStations),
		)
		if r.Mismatches != 0 {
			t.Pass = false
		}
		if r.Stations >= 1024 && r.Speedup < 5 {
			t.Pass = false
		}
	}
	if jsonPath != "" {
		if err := WriteDynamicBenchJSON(jsonPath, rows); err != nil {
			return nil, err
		}
		t.Note("wrote %s (%d rows)", jsonPath, len(rows))
	}
	checkpoints := 0
	if len(rows) > 0 {
		checkpoints = rows[0].Checkpoints // the events axis is shared, so every row checks alike
	}
	t.Note("apply = dynamic.Network.Apply (incremental below the churn threshold); rebuild = from-scratch engine on the same final set; answers checked at %d checkpoints/row", checkpoints)
	return t, nil
}
