package exp

import (
	"math"

	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/geom"
	"repro/internal/udg"
	"repro/internal/workload"
)

// CommunicationGraph runs E15: how well does a UDG approximate the
// true SINR communication graph (edge i->j iff j receives i under
// concurrent transmission)? For each deployment the experiment sweeps
// the UDG radius and reports the best-achievable edge disagreement —
// quantifying the paper's core claim that no disk graph captures SINR
// connectivity exactly.
func CommunicationGraph(trials int) (*Table, error) {
	t := &Table{
		ID:         "E15",
		Title:      "Communication graph: best-UDG approximation error",
		PaperClaim: "graph models cannot capture SINR reception exactly (Sec. 1.1): even the best-radius UDG mislabels edges",
		Headers:    []string{"n", "avgEdges(SINR)", "bestUDGerr%", "falsePos", "falseNeg"},
	}
	t.Pass = true
	for _, n := range []int{8, 16, 32} {
		gen := workload.NewGenerator(int64(5000 * n))
		var edgeSum, errSum float64
		var fpSum, fnSum int
		for trial := 0; trial < trials; trial++ {
			box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
			pts, err := gen.UniformSeparated(n, box, 0.3)
			if err != nil {
				return nil, err
			}
			net, err := core.NewUniform(pts, 0.01, 2)
			if err != nil {
				return nil, err
			}
			d, err := diagram.Build(net, 32, 1e-4)
			if err != nil {
				return nil, err
			}
			truth := d.CommunicationGraph()
			edges := 0
			for i := range truth {
				for j := range truth[i] {
					if truth[i][j] {
						edges++
					}
				}
			}
			edgeSum += float64(edges)

			bestErr := math.Inf(1)
			bestFP, bestFN := 0, 0
			for _, r := range []float64{0.3, 0.5, 0.8, 1.2, 1.8, 2.5, 3.5, 5} {
				m, err := udg.NewUDG(pts, r)
				if err != nil {
					return nil, err
				}
				fp, fn := 0, 0
				for i := range truth {
					for j := range truth[i] {
						if i == j {
							continue
						}
						udgEdge := m.Adjacent(i, j)
						switch {
						case udgEdge && !truth[i][j]:
							fp++
						case !udgEdge && truth[i][j]:
							fn++
						}
					}
				}
				if e := float64(fp + fn); e < bestErr {
					bestErr, bestFP, bestFN = e, fp, fn
				}
			}
			total := float64(n * (n - 1))
			errSum += 100 * bestErr / total
			fpSum += bestFP
			fnSum += bestFN
		}
		t.AddRowf(n,
			edgeSum/float64(trials),
			errSum/float64(trials),
			fpSum, fnSum)
	}
	t.Note("bestUDGerr%% is the mislabeled-edge percentage of the best radius in a sweep; 0 would mean a disk graph suffices")
	return t, nil
}
