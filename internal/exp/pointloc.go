package exp

import (
	"math/rand"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/workload"
)

// Theorem3QDS runs E7: build the per-station structure across n and
// eps, verifying the three Theorem 3 guarantees.
func Theorem3QDS() (*Table, error) {
	t := &Table{
		ID:         "E7",
		Title:      "Theorem 3 / Figure 6: approximate point-location structure",
		PaperClaim: "(1) H+ inside H; (2) H- disjoint from H; (3) area(H?) <= eps*area(H); size O(eps^-1) per station",
		Headers: []string{
			"n", "eps", "|T?|", "areaRatio", "inv1+2 bad", "sturmBad",
		},
	}
	t.Pass = true
	rng := rand.New(rand.NewSource(1007))
	for _, n := range []int{4, 16} {
		gen := workload.NewGenerator(int64(3000 * n))
		net, err := randomUniformNet(gen, n, 0.01, 3)
		if err != nil {
			return nil, err
		}
		z, err := net.Zone(0)
		if err != nil {
			return nil, err
		}
		for _, eps := range []float64{0.5, 0.2, 0.1, 0.05} {
			q, err := net.BuildQDS(0, eps)
			if err != nil {
				return nil, err
			}
			area, err := z.ApproxArea(720, q.Gamma()/16)
			if err != nil {
				return nil, err
			}
			ratio := q.UncertainArea() / area

			// Invariants (1) and (2) by sampling.
			bad := 0
			ext := q.Bounds().DeltaUpper * 1.5
			s := net.Station(0)
			for i := 0; i < 3000; i++ {
				p := geom.Pt(s.X+(rng.Float64()*2-1)*ext, s.Y+(rng.Float64()*2-1)*ext)
				in := z.Contains(p)
				switch q.Classify(p) {
				case core.TPlus:
					if !in {
						bad++
					}
				case core.TMinus:
					if in {
						bad++
					}
				}
			}
			sturmBad, err := q.VerifyColumns()
			if err != nil {
				return nil, err
			}
			t.AddRowf(n, eps, q.NumUncertainCells(), ratio, bad, sturmBad)
			if ratio > eps || bad > 0 || sturmBad > 0 {
				t.Pass = false
			}
		}
	}
	return t, nil
}

// QueryTiming holds measured per-query times for E8.
type QueryTiming struct {
	N          int
	BuildTime  time.Duration
	NaivePerOp time.Duration
	VoroPerOp  time.Duration
	DSPerOp    time.Duration
}

// MeasureQueryScaling measures the three query algorithms of the
// paper's point-location discussion across network sizes: the naive
// all-stations scan, the Voronoi/nearest-candidate check, and the
// Theorem 3 structure. queries controls the sample count per cell.
func MeasureQueryScaling(sizes []int, queries int) ([]QueryTiming, error) {
	var out []QueryTiming
	for _, n := range sizes {
		gen := workload.NewGenerator(int64(4000 * n))
		net, err := randomUniformNet(gen, n, 0.01, 3)
		if err != nil {
			return nil, err
		}
		box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
		qs := gen.QueryPoints(queries, box)

		start := time.Now()
		loc, err := net.BuildLocator(0.1)
		if err != nil {
			return nil, err
		}
		build := time.Since(start)

		tree := kdtree.New(net.Stations())

		start = time.Now()
		for _, p := range qs {
			net.NaiveLocate(p)
		}
		naive := time.Since(start) / time.Duration(len(qs))

		start = time.Now()
		for _, p := range qs {
			net.VoronoiLocate(p, tree)
		}
		voro := time.Since(start) / time.Duration(len(qs))

		start = time.Now()
		for _, p := range qs {
			loc.Locate(p)
		}
		ds := time.Since(start) / time.Duration(len(qs))

		out = append(out, QueryTiming{
			N: n, BuildTime: build, NaivePerOp: naive, VoroPerOp: voro, DSPerOp: ds,
		})
	}
	return out, nil
}

// QueryScaling runs E8 and formats the timings.
func QueryScaling() (*Table, error) {
	t := &Table{
		ID:         "E8",
		Title:      "Theorem 3: query-time scaling (naive vs Voronoi-candidate vs DS)",
		PaperClaim: "naive O(n^2)-style scan < Voronoi O(n) < DS O(log n) at scale; crossover at small n",
		Headers:    []string{"n", "build", "naive/op", "voronoi/op", "DS/op"},
	}
	timings, err := MeasureQueryScaling([]int{4, 16, 64, 256}, 4000)
	if err != nil {
		return nil, err
	}
	for _, tm := range timings {
		t.AddRow(
			strconv.Itoa(tm.N),
			tm.BuildTime.Round(time.Microsecond).String(),
			tm.NaivePerOp.String(),
			tm.VoroPerOp.String(),
			tm.DSPerOp.String(),
		)
	}
	// Shape check: at the largest n the DS must beat the naive scan.
	last := timings[len(timings)-1]
	t.Pass = last.DSPerOp < last.NaivePerOp
	t.Note("DS per-op time should stay near-flat in n; naive grows ~quadratically per answered query set")
	return t, nil
}

// GridAblation runs E11: gamma-grid sizing ablation — |T?| must scale
// as O(1/eps), and the Section 5.2 improved bounds must shrink the
// structure versus raw Theorem 4.1 bounds.
func GridAblation() (*Table, error) {
	t := &Table{
		ID:         "E11",
		Title:      "Ablation: grid pitch vs eps; improved vs raw bounds",
		PaperClaim: "|T?| = O(1/eps); Section 5.2 Theta(r) bounds shrink the grid vs Theorem 4.1's O(sqrt(n)) ratio",
		Headers:    []string{"eps", "|T?|", "ratioVsPrev", "rawRatio", "improvedRatio"},
	}
	gen := workload.NewGenerator(1009)
	net, err := randomUniformNet(gen, 12, 0.01, 3)
	if err != nil {
		return nil, err
	}
	raw, err := net.TheoremBounds(0)
	if err != nil {
		return nil, err
	}
	imp, err := net.ImprovedBounds(0)
	if err != nil {
		return nil, err
	}
	prev := 0
	t.Pass = true
	for _, eps := range []float64{0.8, 0.4, 0.2, 0.1, 0.05} {
		q, err := net.BuildQDS(0, eps)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if prev > 0 {
			ratio = float64(q.NumUncertainCells()) / float64(prev)
		}
		t.AddRowf(eps, q.NumUncertainCells(), ratio, raw.FatnessRatio(), imp.FatnessRatio())
		if prev > 0 && (ratio < 1.3 || ratio > 3.0) {
			t.Pass = false
		}
		prev = q.NumUncertainCells()
	}
	if imp.FatnessRatio() > raw.FatnessRatio() {
		t.Pass = false
	}
	t.Note("halving eps should ~double |T?|; improved delta/Delta ratio <= raw O(sqrt(n)) ratio")
	return t, nil
}

// Experiment pairs an experiment id with its runner, so callers can
// select before paying the (sometimes substantial) execution cost.
type Experiment struct {
	ID  string
	Run func() (*Table, error)
}

// Registry returns every experiment in paper order. trials scales the
// randomized validations (use ~5 for quick runs, ~20 for full runs).
// Experiments exercising the concurrency layer use
// core.DefaultWorkers() workers; use RegistryWorkers to override.
func Registry(trials int) []Experiment {
	return RegistryWorkers(trials, 0)
}

// RegistryWorkers is Registry with an explicit worker count for the
// concurrency-layer experiments (0 means core.DefaultWorkers(), 1
// forces the serial paths).
func RegistryWorkers(trials, workers int) []Experiment {
	return RegistryResolvers(trials, workers, "", "")
}

// DefaultHotPathSizes is the network-size axis of the E18 hot-path
// comparison: up to 1024 stations at constant density — the committed
// BENCH_hotpath.json trajectory point is produced at these sizes.
// CI and tests pass a smaller axis (the n=1024 locator build is the
// expensive part, not the queries).
var DefaultHotPathSizes = []int{16, 64, 256, 1024}

// DefaultHotPathQueries is the per-workload query count of E18.
const DefaultHotPathQueries = 4096

// RegistryResolvers is RegistryWorkers with the resolver-axis knobs
// of E17: resolver restricts the cross-backend comparison to one
// backend ("" or "all" compares all four) and resolversOut, when
// non-empty, is the path the BENCH_resolvers.json artifact is
// written to. E18 runs with its default sizes and no artifact; use
// RegistryHotPath to control it.
func RegistryResolvers(trials, workers int, resolver, resolversOut string) []Experiment {
	return RegistryHotPath(trials, workers, resolver, resolversOut, DefaultHotPathSizes, DefaultHotPathQueries, "")
}

// RegistryHotPath is RegistryResolvers with the E18 hot-path knobs:
// the network-size axis, the per-workload query count and the path
// the BENCH_hotpath.json artifact is written to (empty = no file).
// E19 runs with its default churn axis and no artifact; use
// RegistryDynamic to control it.
func RegistryHotPath(trials, workers int, resolver, resolversOut string, hotSizes []int, hotQueries int, hotPathOut string) []Experiment {
	return RegistryDynamic(trials, workers, resolver, resolversOut, hotSizes, hotQueries, hotPathOut,
		DefaultDynamicSizes, DefaultDynamicEvents, DefaultDynamicQueries, "")
}

// RegistryDynamic is RegistryHotPath with the E19 churn knobs: the
// network-size axis, the churn-trace length and correctness-probe
// count per cell, and the path the BENCH_dynamic.json artifact is
// written to (empty = no file). E20 runs with its default size axis
// and no artifact; use RegistrySched to control it.
func RegistryDynamic(trials, workers int, resolver, resolversOut string, hotSizes []int, hotQueries int, hotPathOut string,
	dynSizes []int, dynEvents, dynQueries int, dynOut string) []Experiment {
	return RegistrySched(trials, workers, resolver, resolversOut, hotSizes, hotQueries, hotPathOut,
		dynSizes, dynEvents, dynQueries, dynOut, DefaultSchedSizes, "")
}

// RegistrySched is RegistryDynamic with the E20 scheduling knobs: the
// link-count axis and the path the BENCH_sched.json artifact is
// written to (empty = no file).
func RegistrySched(trials, workers int, resolver, resolversOut string, hotSizes []int, hotQueries int, hotPathOut string,
	dynSizes []int, dynEvents, dynQueries int, dynOut string, schedSizes []int, schedOut string) []Experiment {
	return []Experiment{
		{"E1", Fig1Reception},
		{"E2", Fig2Cumulative},
		{"E3", Fig34StepSeries},
		{"E4", Fig5NonConvex},
		{"E5", func() (*Table, error) { return Theorem1Convexity(trials) }},
		{"E6", func() (*Table, error) { return Theorem2Fatness(trials) }},
		{"E7", Theorem3QDS},
		{"E8", QueryScaling},
		{"E9", func() (*Table, error) { return StarShapeObs22(trials) }},
		{"E10", func() (*Table, error) { return SturmSection32(trials * 10) }},
		{"E10b", func() (*Table, error) { return MergeConstructions(trials * 5) }},
		{"E11", GridAblation},
		{"E12", func() (*Table, error) { return GeneralAlphaConvexity(trials) }},
		{"E13", NonUniformPower},
		{"E14", func() (*Table, error) { return Scheduling(trials) }},
		{"E15", func() (*Table, error) { return CommunicationGraph(trials) }},
		{"E16", func() (*Table, error) { return ParallelScaling(workers) }},
		{"E17", func() (*Table, error) { return ResolverComparison(workers, resolver, resolversOut) }},
		{"E18", func() (*Table, error) { return HotPathComparison(workers, hotSizes, hotQueries, hotPathOut) }},
		{"E19", func() (*Table, error) { return DynamicChurnComparison(dynSizes, dynEvents, dynQueries, dynOut) }},
		{"E20", func() (*Table, error) { return SchedComparison(schedSizes, schedOut) }},
	}
}

// AllExperiments runs every experiment in order.
func AllExperiments(trials int) ([]*Table, error) {
	reg := Registry(trials)
	out := make([]*Table, 0, len(reg))
	for _, e := range reg {
		tbl, err := e.Run()
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
