// Package exp is the experiment harness of the reproduction: one
// entry per figure and theorem of the paper, each regenerating the
// corresponding artifact (reception outcomes, convexity certificates,
// fatness measurements, point-location structures and timings) and
// emitting a formatted table recording paper-claim versus measured
// outcome. cmd/sinrbench runs every experiment; EXPERIMENTS.md records
// the output.
//
// Map to the paper: E1-E4 regenerate Figures 1-5; E5/E6/E7 validate
// Theorems 1/2/3; E8 measures the query-time scaling of the paper's
// point-location discussion; E9-E11 cover Observation 2.2, the
// Section 3.2 Sturm analysis and the Section 5 grid sizing; E12-E15
// probe beyond the theorems (general alpha, non-uniform power,
// scheduling, communication graphs); E16 validates the concurrency
// layer (parallel builds and batch queries answer identically to the
// serial paths).
package exp
