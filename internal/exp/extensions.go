package exp

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// GeneralAlphaConvexity runs E12: the Section 1.4 open problem "study
// SINR diagrams for path-loss alpha > 2". The polynomial machinery is
// alpha = 2 specific, but the sampling certificates are not; across
// exponents the probes find no convexity violation for uniform power,
// supporting the conjecture that Theorem 1 extends (later literature
// proved it for all alpha > 0).
func GeneralAlphaConvexity(trialsPerCell int) (*Table, error) {
	t := &Table{
		ID:         "E12",
		Title:      "Open problem (Sec. 1.4): convexity beyond alpha = 2",
		PaperClaim: "the paper leaves alpha != 2 open; probes should find no violation for uniform power, beta > 1",
		Headers:    []string{"alpha", "trials", "midpointViolations", "chordViolations"},
	}
	t.Pass = true
	rng := rand.New(rand.NewSource(1201))
	for _, alpha := range []float64{1.5, 2, 2.5, 3, 4, 6} {
		gen := workload.NewGenerator(int64(alpha * 1000))
		midViol, chordViol := 0, 0
		for trial := 0; trial < trialsPerCell; trial++ {
			box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
			pts, err := gen.UniformSeparated(2+trial%6, box, 0.05)
			if err != nil {
				return nil, err
			}
			net, err := core.NewNetwork(pts, 0.01, 2.5, core.WithAlpha(alpha))
			if err != nil {
				return nil, err
			}
			rep, err := net.ProbeConvexity(0, 60, 10, rng)
			if err != nil {
				return nil, err
			}
			midViol += rep.MidpointViolations
			chordViol += rep.ChordViolations
		}
		t.AddRowf(alpha, trialsPerCell, midViol, chordViol)
		if midViol > 0 || chordViol > 0 {
			t.Pass = false
		}
	}
	return t, nil
}

// NonUniformPower runs E13: the Section 1.4 open problem "different
// transmission energies". The experiment exhibits a concrete beta > 1
// non-uniform network whose strong station's zone is non-convex (a
// hole wraps the weak interferer), and measures how often randomized
// search finds such violations.
func NonUniformPower() (*Table, error) {
	t := &Table{
		ID:         "E13",
		Title:      "Open problem (Sec. 1.4): non-uniform power breaks convexity",
		PaperClaim: "the paper notes general networks are harder; a power-imbalanced witness shows Theorem 1's uniformity assumption is necessary",
		Headers:    []string{"check", "result"},
	}
	// Deterministic witness.
	net, p1, p2, err := core.NonConvexNonUniformExample()
	if err != nil {
		return nil, err
	}
	mid := geom.Midpoint(p1, p2)
	witnessOK := net.Heard(0, p1) && net.Heard(0, p2) && !net.Heard(0, mid)
	t.AddRowf("deterministic witness (psi=100 vs 1, beta=2)", witnessOK)
	t.Note("endpoints %v, %v in zone 0; midpoint %v outside (SINR=%.3g < beta=%.3g)",
		p1, p2, mid, net.SINR(0, mid), net.Beta())

	// Randomized search.
	found := 0
	const seeds = 10
	for seed := int64(0); seed < seeds; seed++ {
		_, _, _, ok, err := core.FindNonConvexNonUniform(3, 30, 50, 1.5, seed)
		if err != nil {
			return nil, err
		}
		if ok {
			found++
		}
	}
	t.AddRowf("random 3-station searches finding a violation", found)
	t.Pass = witnessOK && found > 0
	return t, nil
}
