package workload

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestUniformInBoxBoundsAndDeterminism(t *testing.T) {
	box := geom.NewBox(geom.Pt(-2, 1), geom.Pt(3, 4))
	g1 := NewGenerator(42)
	pts := g1.UniformInBox(100, box)
	if len(pts) != 100 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !box.Contains(p) {
			t.Fatalf("point %v outside %v", p, box)
		}
	}
	// Same seed reproduces the same deployment.
	g2 := NewGenerator(42)
	pts2 := g2.UniformInBox(100, box)
	for i := range pts {
		if pts[i] != pts2[i] {
			t.Fatal("same seed produced different deployments")
		}
	}
	// Different seed differs.
	g3 := NewGenerator(43)
	pts3 := g3.UniformInBox(100, box)
	same := true
	for i := range pts {
		if pts[i] != pts3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical deployments")
	}
}

func TestUniformSeparated(t *testing.T) {
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(10, 10))
	g := NewGenerator(7)
	pts, err := g.UniformSeparated(20, box, 1.0)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := geom.Dist(pts[i], pts[j]); d < 1.0 {
				t.Fatalf("separation violated: %v", d)
			}
		}
	}
	// Infeasible density errors out instead of looping forever.
	if _, err := g.UniformSeparated(1000, geom.NewBox(geom.Pt(0, 0), geom.Pt(1, 1)), 0.5); err == nil {
		t.Error("expected infeasibility error")
	}
}

func TestClustered(t *testing.T) {
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(100, 100))
	g := NewGenerator(3)
	pts := g.Clustered(60, 3, box, 0.5)
	if len(pts) != 60 {
		t.Fatalf("len = %d", len(pts))
	}
	// With stddev 0.5 and 3 clusters, points should concentrate: the
	// mean nearest-neighbor distance must be far below the uniform
	// expectation (~ 0.5 / sqrt(60/10000) ≈ 6.5).
	var sum float64
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i != j {
				if d := geom.Dist(p, q); d < best {
					best = d
				}
			}
		}
		sum += best
	}
	if mean := sum / float64(len(pts)); mean > 2 {
		t.Errorf("mean NN distance %v too large for clustered layout", mean)
	}
	// nClusters < 1 is clamped, not a crash.
	if got := g.Clustered(5, 0, box, 1); len(got) != 5 {
		t.Errorf("len = %d", len(got))
	}
}

func TestColinear(t *testing.T) {
	g := NewGenerator(11)
	pts := g.Colinear(10, 1, 2)
	if len(pts) != 10 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0] != geom.Pt(0, 0) {
		t.Errorf("first point = %v, want origin", pts[0])
	}
	for i, p := range pts {
		if p.Y != 0 {
			t.Errorf("point %d off axis: %v", i, p)
		}
		if i > 0 {
			gap := p.X - pts[i-1].X
			if gap < 1 || gap > 2 {
				t.Errorf("gap %d = %v outside [1, 2]", i, gap)
			}
		}
	}
}

func TestRing(t *testing.T) {
	g := NewGenerator(13)
	center := geom.Pt(1, 2)
	pts := g.Ring(12, center, 5, 0)
	if len(pts) != 12 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if d := geom.Dist(center, p); math.Abs(d-5) > 1e-9 {
			t.Errorf("radius = %v, want 5", d)
		}
	}
	// Jittered ring still has the right radius.
	for _, p := range g.Ring(12, center, 5, 0.1) {
		if d := geom.Dist(center, p); math.Abs(d-5) > 1e-9 {
			t.Errorf("jittered radius = %v", d)
		}
	}
}

func TestLattice(t *testing.T) {
	pts := Lattice(2, 3, geom.Pt(1, 1), 2)
	if len(pts) != 6 {
		t.Fatalf("len = %d", len(pts))
	}
	want := []geom.Point{
		geom.Pt(1, 1), geom.Pt(3, 1), geom.Pt(5, 1),
		geom.Pt(1, 3), geom.Pt(3, 3), geom.Pt(5, 3),
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("pts = %v, want %v", pts, want)
		}
	}
}

func TestAuxiliaryDraws(t *testing.T) {
	g := NewGenerator(1)
	v := g.Float64()
	if v < 0 || v >= 1 {
		t.Errorf("Float64 = %v", v)
	}
	n := g.Intn(10)
	if n < 0 || n >= 10 {
		t.Errorf("Intn = %d", n)
	}
	q := g.QueryPoints(5, geom.NewBox(geom.Pt(0, 0), geom.Pt(1, 1)))
	if len(q) != 5 {
		t.Errorf("QueryPoints len = %d", len(q))
	}
}

func TestHotspotPoints(t *testing.T) {
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(10, 10))
	g := NewGenerator(7)
	pts := g.HotspotPoints(2000, box, 3, 0.8, 0.2)
	if len(pts) != 2000 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !box.Contains(p) {
			t.Fatalf("hotspot point %v outside %v", p, box)
		}
	}
	// Skew sanity: with 80% of traffic in tight hotspots, the average
	// nearest-neighbor clustering must be far from uniform. Cheap proxy:
	// a large fraction of points must fall within 3 sigma of one of a
	// re-generated center set is not reproducible, so instead check that
	// some 1x1 cell of a 10x10 grid holds far more than the uniform
	// share of points.
	var grid [10][10]int
	for _, p := range pts {
		x, y := int(p.X), int(p.Y)
		if x > 9 {
			x = 9
		}
		if y > 9 {
			y = 9
		}
		grid[x][y]++
	}
	max := 0
	for x := range grid {
		for y := range grid[x] {
			if grid[x][y] > max {
				max = grid[x][y]
			}
		}
	}
	if max < 3*len(pts)/100 { // uniform share is 1% per cell
		t.Errorf("max cell holds %d of %d points; expected strong hotspot skew", max, len(pts))
	}
	// Determinism by seed.
	pts2 := NewGenerator(7).HotspotPoints(2000, box, 3, 0.8, 0.2)
	for i := range pts {
		if pts[i] != pts2[i] {
			t.Fatalf("hotspot points not reproducible at %d", i)
		}
	}
}

func TestMobilityTrace(t *testing.T) {
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(10, 10))
	g := NewGenerator(11)
	const walkers, steps, speed = 5, 40, 0.3
	trace := g.MobilityTrace(walkers, steps, box, speed)
	if len(trace) != walkers*steps {
		t.Fatalf("len = %d, want %d", len(trace), walkers*steps)
	}
	for _, p := range trace {
		if !box.Contains(p) {
			t.Fatalf("trace point %v outside %v", p, box)
		}
	}
	// Temporal locality: each walker moves at most speed per step
	// (waypoint arrivals can move less). Walker w's step-s position sits
	// at trace[s*walkers+w].
	for w := 0; w < walkers; w++ {
		for s := 1; s < steps; s++ {
			a := trace[(s-1)*walkers+w]
			b := trace[s*walkers+w]
			if d := geom.Dist(a, b); d > speed+1e-12 {
				t.Fatalf("walker %d step %d jumped %v > speed %v", w, s, d, speed)
			}
		}
	}
	if g.MobilityTrace(0, 10, box, 1) != nil {
		t.Error("zero walkers should return nil")
	}
	if g.MobilityTrace(2, 10, box, 0) != nil || g.MobilityTrace(2, 10, box, -1) != nil ||
		g.MobilityTrace(2, 10, box, math.NaN()) != nil || g.MobilityTrace(2, 10, box, math.Inf(1)) != nil {
		t.Error("invalid speed should return nil")
	}
	if math.IsNaN(trace[len(trace)-1].X) {
		t.Error("NaN in trace")
	}
}

// TestChurnTraceValidAndReproducible replays a trace against a virtual
// station set and checks every event is applicable at its position:
// departure and power indices in range, the floor respected, powers
// positive, and the same seed reproducing the same trace.
func TestChurnTraceValidAndReproducible(t *testing.T) {
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	trace := NewGenerator(42).ChurnTrace(6, 500, box, 1, 1, 1, 0.3)
	if len(trace) != 500 {
		t.Fatalf("trace length %d, want 500", len(trace))
	}
	count := 6
	kinds := map[ChurnKind]int{}
	for i, ev := range trace {
		kinds[ev.Kind]++
		switch ev.Kind {
		case ChurnArrive:
			if !box.Contains(ev.Pos) {
				t.Fatalf("event %d: arrival at %v outside box", i, ev.Pos)
			}
			if ev.Power <= 0 {
				t.Fatalf("event %d: arrival power %g", i, ev.Power)
			}
			count++
		case ChurnDepart:
			if ev.Station < 0 || ev.Station >= count {
				t.Fatalf("event %d: departure index %d of %d", i, ev.Station, count)
			}
			count--
			if count < 2 {
				t.Fatalf("event %d: station count fell to %d", i, count)
			}
		case ChurnPower:
			if ev.Station < 0 || ev.Station >= count {
				t.Fatalf("event %d: power index %d of %d", i, ev.Station, count)
			}
			if ev.Power < 0.125 || ev.Power > 8 {
				t.Fatalf("event %d: power %g outside clamp", i, ev.Power)
			}
		}
	}
	for k := ChurnArrive; k <= ChurnPower; k++ {
		if kinds[k] == 0 {
			t.Fatalf("no %v events in a mixed trace", k)
		}
	}
	again := NewGenerator(42).ChurnTrace(6, 500, box, 1, 1, 1, 0.3)
	for i := range trace {
		if trace[i] != again[i] {
			t.Fatalf("event %d not reproducible: %+v vs %+v", i, trace[i], again[i])
		}
	}
}

// TestChurnTraceRejectsDegenerateWeights: an all-zero (or otherwise
// non-positive) weighting must panic as documented, not silently
// degenerate into a pure power-walk trace.
func TestChurnTraceRejectsDegenerateWeights(t *testing.T) {
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(1, 1))
	for _, w := range [][3]float64{{0, 0, 0}, {-1, 1, 0}, {math.NaN(), 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChurnTrace(weights=%v) did not panic", w)
				}
			}()
			NewGenerator(1).ChurnTrace(4, 10, box, w[0], w[1], w[2], 0.3)
		}()
	}
}

// TestChurnTraceDepartureFloor: a departures-only trace must convert
// to arrivals at the floor instead of emptying the set.
func TestChurnTraceDepartureFloor(t *testing.T) {
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(1, 1))
	trace := NewGenerator(1).ChurnTrace(4, 50, box, 0, 1, 0, 0)
	count := 4
	for i, ev := range trace {
		switch ev.Kind {
		case ChurnDepart:
			count--
		case ChurnArrive:
			count++
		default:
			t.Fatalf("event %d: unexpected %v in a departures-only trace", i, ev.Kind)
		}
		if count < 2 {
			t.Fatalf("event %d: count %d below floor", i, count)
		}
	}
}
