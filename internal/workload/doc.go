// Package workload generates deterministic, seeded station
// deployments for experiments and benchmarks: the uniform, clustered,
// colinear, ring, and lattice layouts used throughout the paper's
// figures and the reproduction's parameter sweeps, plus query-point
// streams for the point-location engines.
//
// Map to the paper: the figure scenarios of Sections 1-5 are drawn
// from these layouts; seeding makes every experiment, benchmark and
// concurrency determinism test reproducible run-to-run.
package workload
