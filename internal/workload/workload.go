package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Generator produces pseudo-random station deployments. It wraps a
// seeded *rand.Rand so experiments are reproducible run-to-run.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a Generator seeded with seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// uniformPoint draws one point uniformly at random from box; every
// uniform draw in this package goes through it so the sampling
// convention lives in one place.
func (g *Generator) uniformPoint(box geom.Box) geom.Point {
	return geom.Pt(
		box.Min.X+g.rng.Float64()*box.Width(),
		box.Min.Y+g.rng.Float64()*box.Height(),
	)
}

// UniformInBox returns n stations drawn uniformly at random from box.
func (g *Generator) UniformInBox(n int, box geom.Box) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = g.uniformPoint(box)
	}
	return pts
}

// UniformSeparated returns n stations uniform in box with pairwise
// distance at least minSep (simple dart throwing; returns an error if
// the density makes placement infeasible after maxTries attempts per
// point).
func (g *Generator) UniformSeparated(n int, box geom.Box, minSep float64) ([]geom.Point, error) {
	const maxTries = 2000
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		placed := false
		for try := 0; try < maxTries; try++ {
			cand := g.uniformPoint(box)
			ok := true
			for _, p := range pts {
				if geom.Dist(p, cand) < minSep {
					ok = false
					break
				}
			}
			if ok {
				pts = append(pts, cand)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("workload: cannot place %d stations with separation %v in %v (placed %d)",
				n, minSep, box, len(pts))
		}
	}
	return pts, nil
}

// Clustered returns stations grouped into nClusters Gaussian clusters
// with the given standard deviation, cluster centers uniform in box.
// n stations are distributed round-robin over the clusters.
func (g *Generator) Clustered(n, nClusters int, box geom.Box, stddev float64) []geom.Point {
	if nClusters < 1 {
		nClusters = 1
	}
	centers := g.UniformInBox(nClusters, box)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[i%nClusters]
		pts[i] = geom.Pt(
			c.X+g.rng.NormFloat64()*stddev,
			c.Y+g.rng.NormFloat64()*stddev,
		)
	}
	return pts
}

// Colinear returns n stations on the x-axis: the first at the origin
// and the rest at increasing positive offsets with random gaps in
// [minGap, maxGap]. This matches the "positive colinear networks" of
// Section 4.2.2 of the paper.
func (g *Generator) Colinear(n int, minGap, maxGap float64) []geom.Point {
	pts := make([]geom.Point, n)
	x := 0.0
	for i := range pts {
		if i > 0 {
			x += minGap + g.rng.Float64()*(maxGap-minGap)
		}
		pts[i] = geom.Pt(x, 0)
	}
	return pts
}

// Ring returns n stations evenly spaced on a circle of the given
// radius around center, plus an optional random angular jitter of up
// to jitter radians per station.
func (g *Generator) Ring(n int, center geom.Point, radius, jitter float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		theta := 2*math.Pi*float64(i)/float64(n) + (g.rng.Float64()*2-1)*jitter
		pts[i] = geom.PolarPoint(center, radius, theta)
	}
	return pts
}

// Lattice returns stations on a rows x cols grid with the given
// spacing, anchored at origin.
func Lattice(rows, cols int, origin geom.Point, spacing float64) []geom.Point {
	pts := make([]geom.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, geom.Pt(
				origin.X+float64(c)*spacing,
				origin.Y+float64(r)*spacing,
			))
		}
	}
	return pts
}

// QueryPoints returns n query points uniform in box (for point-location
// benchmarks).
func (g *Generator) QueryPoints(n int, box geom.Box) []geom.Point {
	return g.UniformInBox(n, box)
}

// HotspotPoints returns n query points modelling skewed user traffic:
// roughly frac of them are Gaussian-distributed (stddev) around
// nCenters hotspot centers drawn uniformly in box, the rest uniform in
// box. Points falling outside box are clamped to its edge, so every
// query stays in the service area.
func (g *Generator) HotspotPoints(n int, box geom.Box, nCenters int, frac, stddev float64) []geom.Point {
	if nCenters < 1 {
		nCenters = 1
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	centers := g.UniformInBox(nCenters, box)
	pts := make([]geom.Point, n)
	for i := range pts {
		if g.rng.Float64() < frac {
			c := centers[g.rng.Intn(nCenters)]
			pts[i] = clampToBox(geom.Pt(
				c.X+g.rng.NormFloat64()*stddev,
				c.Y+g.rng.NormFloat64()*stddev,
			), box)
		} else {
			pts[i] = g.uniformPoint(box)
		}
	}
	return pts
}

// MobilityTrace simulates `walkers` independent random-waypoint users
// taking `steps` steps each inside box: every walker starts uniform in
// box, picks a uniform waypoint, moves toward it at the given speed
// (distance per step), and picks a new waypoint on arrival. The
// returned positions are time-ordered and step-major — all walkers'
// step-0 positions, then step-1, and so on; len = walkers * steps —
// so replaying the slice against a server reproduces the temporal
// locality of user mobility. Invalid parameters (non-positive counts,
// or a speed that is not a positive finite number) return nil.
func (g *Generator) MobilityTrace(walkers, steps int, box geom.Box, speed float64) []geom.Point {
	if walkers < 1 || steps < 1 || !(speed > 0) || math.IsInf(speed, 1) {
		return nil
	}
	pos := g.UniformInBox(walkers, box)
	dst := g.UniformInBox(walkers, box)
	out := make([]geom.Point, 0, walkers*steps)
	for s := 0; s < steps; s++ {
		for w := 0; w < walkers; w++ {
			out = append(out, pos[w])
			d := geom.Dist(pos[w], dst[w])
			if d <= speed {
				pos[w] = dst[w]
				dst[w] = g.uniformPoint(box)
				continue
			}
			pos[w] = geom.Pt(
				pos[w].X+(dst[w].X-pos[w].X)/d*speed,
				pos[w].Y+(dst[w].Y-pos[w].Y)/d*speed,
			)
		}
	}
	return out
}

// clampToBox projects p onto box.
func clampToBox(p geom.Point, box geom.Box) geom.Point {
	if p.X < box.Min.X {
		p.X = box.Min.X
	}
	if p.X > box.Max.X {
		p.X = box.Max.X
	}
	if p.Y < box.Min.Y {
		p.Y = box.Min.Y
	}
	if p.Y > box.Max.Y {
		p.Y = box.Max.Y
	}
	return p
}

// Float64 exposes the underlying RNG's uniform [0, 1) draw, so that
// experiments can derive auxiliary randomness from the same stream.
func (g *Generator) Float64() float64 { return g.rng.Float64() }

// Intn exposes the underlying RNG's uniform integer draw.
func (g *Generator) Intn(n int) int { return g.rng.Intn(n) }

// ChurnKind classifies one churn event of a dynamic-network trace.
type ChurnKind int

// The three churn processes: a station arriving, a station departing,
// and a station's transmission power taking one multiplicative
// random-walk step.
const (
	ChurnArrive ChurnKind = iota
	ChurnDepart
	ChurnPower
)

// String implements fmt.Stringer; the names double as the sinrload
// -churn-kind flag vocabulary ("arrive", "depart", "power").
func (k ChurnKind) String() string {
	switch k {
	case ChurnArrive:
		return "arrive"
	case ChurnDepart:
		return "depart"
	case ChurnPower:
		return "power"
	default:
		return fmt.Sprintf("ChurnKind(%d)", int(k))
	}
}

// ChurnEvent is one single-station mutation of a churn trace. Station
// indexes the station set as it stands when the event is applied
// (arrivals append at the end, departures compact the set in order, so
// consumers replaying the trace agree on indices); Pos is the arrival
// location; Power is the arriving station's power or the power-walk
// step's new absolute power.
type ChurnEvent struct {
	Kind    ChurnKind
	Station int        // depart, power: index at event time
	Pos     geom.Point // arrive: location
	Power   float64    // arrive, power: absolute power
}

// churnMinStations is the floor below which a trace never lets the
// station set shrink: departures that would breach it are emitted as
// arrivals instead, so every prefix of the trace is a valid network.
const churnMinStations = 2

// ChurnTrace generates a reproducible sequence of single-station churn
// events over a deployment of n0 stations with uniform power 1:
// arrivals uniform in box, departures uniform over the current set,
// and power walks taking one multiplicative log-normal step (sigma
// powerSigma, clamped to [1/8, 8]) on a uniformly chosen station.
// pArrive, pDepart and pPower weight the three processes (they are
// normalized; a weighting that does not sum to a positive number is a
// programming error and panics). The generator
// tracks the virtual station set, so every departure index is valid at
// its point in the trace and the power of a walked station follows its
// own history across events.
func (g *Generator) ChurnTrace(n0, events int, box geom.Box, pArrive, pDepart, pPower, powerSigma float64) []ChurnEvent {
	if n0 < 1 || events < 1 {
		return nil
	}
	powers := make([]float64, n0)
	for i := range powers {
		powers[i] = 1
	}
	total := pArrive + pDepart + pPower
	if !(total > 0) { // catches non-positive sums and NaN
		panic("workload: churn process weights must sum to a positive number")
	}
	out := make([]ChurnEvent, 0, events)
	for len(out) < events {
		kind := ChurnArrive
		switch r := g.rng.Float64() * total; {
		case r < pArrive:
			kind = ChurnArrive
		case r < pArrive+pDepart:
			kind = ChurnDepart
		default:
			kind = ChurnPower
		}
		if kind == ChurnDepart && len(powers) <= churnMinStations {
			kind = ChurnArrive
		}
		switch kind {
		case ChurnArrive:
			out = append(out, ChurnEvent{Kind: ChurnArrive, Pos: g.uniformPoint(box), Power: 1})
			powers = append(powers, 1)
		case ChurnDepart:
			i := g.rng.Intn(len(powers))
			out = append(out, ChurnEvent{Kind: ChurnDepart, Station: i})
			powers = append(powers[:i:i], powers[i+1:]...)
		case ChurnPower:
			i := g.rng.Intn(len(powers))
			p := powers[i] * math.Exp(powerSigma*g.rng.NormFloat64())
			if p < 0.125 {
				p = 0.125
			}
			if p > 8 {
				p = 8
			}
			powers[i] = p
			out = append(out, ChurnEvent{Kind: ChurnPower, Station: i, Power: p})
		}
	}
	return out
}
