package trace

import "testing"

// BenchmarkTraceSpan is the CI 0-alloc gate for span recording: the full
// per-request trace lifecycle — Begin, per-stage Start/End, Finish, and
// the flight-recorder Offer — must not allocate, because it runs inside
// the instrumented serving path on every request.
func BenchmarkTraceSpan(b *testing.B) {
	rec := NewRecorder([]string{"locate"}, 8, 8)
	src := NewIDSource()
	var tr Trace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := src.Next()
		tr.Begin(src.TraceID(seq), SpanID{}, "locate")
		q := tr.Start("queue")
		tr.End(q)
		s := tr.Start("resolve.batch")
		tr.End(s)
		tr.Finish(200)
		rec.Offer(0, &tr)
	}
}

// BenchmarkTraceparentParse covers header adoption on the request path.
func BenchmarkTraceparentParse(b *testing.B) {
	h := FormatTraceparent(ID{0xab, 1, 2, 3, 4, 5, 6, 7, 8}, SpanID{0xcd, 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := ParseTraceparent(h); !ok {
			b.Fatal("parse failed")
		}
	}
}
