package trace

import (
	"sort"
	"sync"
	"time"
)

// entry is one recorder slot: a full Trace copied by value, so slots own
// their span data and never alias a pooled per-request trace.
type entry struct {
	used bool
	tr   Trace
}

// stripe is the per-route shard of the recorder: its own lock, a
// keep-the-slowest lane and a most-recent-errors ring.
type stripe struct {
	mu      sync.Mutex
	slow    []entry
	errs    []entry
	errNext int
}

// Recorder tail-samples completed traces. It is lock-striped by route
// index — the hot Offer path touches only one stripe's mutex and does
// no map lookups and no allocation; all sizing happens at construction.
type Recorder struct {
	routes  []string
	index   map[string]int
	stripes []stripe
}

// NewRecorder builds a recorder for the given route names, keeping the
// slowN slowest and the errN most recent errored traces per route.
func NewRecorder(routes []string, slowN, errN int) *Recorder {
	if slowN < 1 {
		slowN = 1
	}
	if errN < 1 {
		errN = 1
	}
	r := &Recorder{
		routes:  append([]string(nil), routes...),
		index:   make(map[string]int, len(routes)),
		stripes: make([]stripe, len(routes)),
	}
	for i, name := range r.routes {
		r.index[name] = i
		r.stripes[i].slow = make([]entry, slowN)
		r.stripes[i].errs = make([]entry, errN)
	}
	return r
}

// RouteIndex returns the stripe index for a route name, or -1 when the
// route is unknown. Resolve once at wiring time, not per request.
func (r *Recorder) RouteIndex(name string) int {
	if r == nil {
		return -1
	}
	if i, ok := r.index[name]; ok {
		return i
	}
	return -1
}

// Offer considers a finished trace for capture. Traces with status >=
// 400 enter the route's error ring; every trace competes for the
// slowest-N lane, evicting the fastest resident. The trace is copied by
// value — the caller may immediately reuse it. Nil-safe, bounds-safe.
//
//sinr:hotpath
func (r *Recorder) Offer(route int, t *Trace) {
	if r == nil || t == nil || route < 0 || route >= len(r.stripes) || t.ID.IsZero() {
		return
	}
	st := &r.stripes[route]
	st.mu.Lock()
	if t.Status >= 400 {
		st.errs[st.errNext] = entry{used: true, tr: *t}
		st.errNext++
		if st.errNext == len(st.errs) {
			st.errNext = 0
		}
	}
	min, minAt := time.Duration(-1), -1
	for i := range st.slow {
		if !st.slow[i].used {
			min, minAt = -1, i
			break
		}
		if min < 0 || st.slow[i].tr.Total < min {
			min, minAt = st.slow[i].tr.Total, i
		}
	}
	if minAt >= 0 && t.Total > min {
		st.slow[minAt] = entry{used: true, tr: *t}
	}
	st.mu.Unlock()
}

// DropNetwork forgets every captured trace attached to the named
// network — called when a network is deleted (HTTP DELETE or reconcile
// eviction) so /debug/requests never points at evicted state.
func (r *Recorder) DropNetwork(name string) {
	if r == nil || name == "" {
		return
	}
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for lane := 0; lane < 2; lane++ {
			slots := st.slow
			if lane == 1 {
				slots = st.errs
			}
			for j := range slots {
				if slots[j].used && slots[j].tr.Network == name {
					slots[j] = entry{}
				}
			}
		}
		st.mu.Unlock()
	}
}

// CapturedSpan is one stage of a captured trace's JSON timeline.
type CapturedSpan struct {
	Name       string  `json:"name"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

// Captured is the JSON shape served by GET /debug/requests.
type Captured struct {
	TraceID      string         `json:"trace_id"`
	Route        string         `json:"route"`
	Network      string         `json:"network,omitempty"`
	Status       int            `json:"status"`
	Start        time.Time      `json:"start"`
	DurationMS   float64        `json:"duration_ms"`
	DroppedSpans int            `json:"dropped_spans,omitempty"`
	Spans        []CapturedSpan `json:"spans"`
}

// Snapshot returns the captured traces, slowest first, deduplicated by
// trace ID across the slow and error lanes. route == "" means all
// routes; traces faster than min are omitted. Debug path: allocates.
func (r *Recorder) Snapshot(route string, min time.Duration) []Captured {
	if r == nil {
		return nil
	}
	var out []Captured
	seen := make(map[ID]bool)
	for i := range r.stripes {
		if route != "" && r.routes[i] != route {
			continue
		}
		st := &r.stripes[i]
		st.mu.Lock()
		for _, lane := range [2][]entry{st.slow, st.errs} {
			for j := range lane {
				e := &lane[j]
				if !e.used || e.tr.Total < min || seen[e.tr.ID] {
					continue
				}
				seen[e.tr.ID] = true
				out = append(out, capture(&e.tr))
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].DurationMS != out[b].DurationMS {
			return out[a].DurationMS > out[b].DurationMS
		}
		return out[a].TraceID < out[b].TraceID
	})
	return out
}

func capture(t *Trace) Captured {
	c := Captured{
		TraceID:      t.ID.String(),
		Route:        t.Route,
		Network:      t.Network,
		Status:       t.Status,
		Start:        t.Wall,
		DurationMS:   float64(t.Total) / float64(time.Millisecond),
		DroppedSpans: t.Dropped,
		Spans:        make([]CapturedSpan, 0, t.n),
	}
	for i := 0; i < t.n; i++ {
		sp := t.spans[i]
		end := sp.End
		if end == 0 {
			end = t.Total
		}
		c.Spans = append(c.Spans, CapturedSpan{
			Name:       sp.Name,
			StartMS:    float64(sp.Start) / float64(time.Millisecond),
			DurationMS: float64(end-sp.Start) / float64(time.Millisecond),
		})
	}
	return c
}
