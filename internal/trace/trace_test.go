package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	src := NewIDSource()
	seq := src.Next()
	id := src.TraceID(seq)
	sp := src.SpanIDFor(seq)

	h := FormatTraceparent(id, sp)
	if len(h) != traceparentLen {
		t.Fatalf("traceparent length = %d, want %d (%q)", len(h), traceparentLen, h)
	}
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent framing wrong: %q", h)
	}
	gotID, gotSp, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) not ok", h)
	}
	if gotID != id || gotSp != sp {
		t.Fatalf("round trip: got (%s, %s), want (%s, %s)", gotID, gotSp, id, sp)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := FormatTraceparent(ID{1}, SpanID{2})
	bad := []string{
		"",
		"00-abc",
		valid + "x",                         // version 00 must be exactly 55 chars
		valid + "-extra",                    // ... even with a separator
		"ff" + valid[2:],                    // version ff is reserved invalid
		"0x" + valid[2:],                    // non-hex version
		"01" + valid[2:6] + "x" + valid[7:], // future version, corrupt trace ID
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // zero trace ID
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("a", 16) + "-01", // non-hex
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero parent span ID
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("control: valid header %q rejected", valid)
	}
}

// TestParseTraceparentFutureVersions pins the W3C forward-compatibility
// rule: an unknown (non-ff) version parses as version 00, including
// when the header carries additional "-"-separated fields.
func TestParseTraceparentFutureVersions(t *testing.T) {
	wantID, wantSp := ID{1}, SpanID{2}
	base := FormatTraceparent(wantID, wantSp)[2:] // strip "00"
	for _, h := range []string{
		"01" + base,
		"cc" + base,
		"01" + base + "-extra-fields.here",
	} {
		id, sp, ok := ParseTraceparent(h)
		if !ok {
			t.Errorf("ParseTraceparent(%q) rejected a future-version header", h)
			continue
		}
		if id != wantID || sp != wantSp {
			t.Errorf("ParseTraceparent(%q) = (%s, %s), want (%s, %s)", h, id, sp, wantID, wantSp)
		}
	}
	// Future version with trailing garbage not introduced by "-".
	if _, _, ok := ParseTraceparent("01" + base + "x"); ok {
		t.Error("future version with unseparated trailing data accepted")
	}
}

func TestIDSourceUnifiesRequestAndTraceIDs(t *testing.T) {
	src := NewIDSource()
	a, b := src.Next(), src.Next()
	if b != a+1 {
		t.Fatalf("sequence not monotonic: %d then %d", a, b)
	}
	id := src.TraceID(a)
	// Bytes 0..7 are the prefix, 8..15 the sequence number — the same
	// (prefix, seq) pair that renders the X-Request-Id.
	wantPrefix := src.Prefix()
	var gotPrefix uint64
	for i := 0; i < 8; i++ {
		gotPrefix = gotPrefix<<8 | uint64(id[i])
	}
	if gotPrefix != wantPrefix {
		t.Fatalf("trace ID prefix = %x, want %x", gotPrefix, wantPrefix)
	}
	var gotSeq uint64
	for i := 8; i < 16; i++ {
		gotSeq = gotSeq<<8 | uint64(id[i])
	}
	if gotSeq != a {
		t.Fatalf("trace ID seq = %d, want %d", gotSeq, a)
	}
	if src.TraceID(a) == src.TraceID(b) {
		t.Fatal("distinct sequence numbers produced identical trace IDs")
	}
	if SpanID(id[0:8]) == src.SpanIDFor(a) {
		t.Fatal("span ID must differ from the trace ID's top half")
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Begin(ID{1}, SpanID{}, "locate")
	if i := tr.Start("x"); i != -1 {
		t.Fatalf("nil Start = %d, want -1", i)
	}
	tr.End(0)
	tr.SetName(0, "y")
	tr.SetNetwork("n")
	if d := tr.Finish(200); d != 0 {
		t.Fatalf("nil Finish = %v, want 0", d)
	}
	if tr.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
	if sp := tr.SpanAt(0); sp != (Span{}) {
		t.Fatalf("nil SpanAt = %+v, want zero Span", sp)
	}
}

func TestUnbegunTraceRecordsNothing(t *testing.T) {
	var tr Trace
	if i := tr.Start("x"); i != -1 {
		t.Fatalf("unbegun Start = %d, want -1", i)
	}
}

func TestSpanRecordingAndOverflow(t *testing.T) {
	var tr Trace
	tr.Begin(ID{1}, SpanID{2}, "locate")
	tr.SetNetwork("demo")

	outer := tr.Start("resolve.batch")
	inner := tr.Start("resolver.build")
	time.Sleep(time.Millisecond)
	tr.End(inner)
	tr.End(outer)
	tr.SetName(inner, "resolver.hit")

	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	sp := tr.SpanAt(inner)
	if sp.Name != "resolver.hit" {
		t.Fatalf("SetName not applied: %q", sp.Name)
	}
	if sp.End <= sp.Start {
		t.Fatalf("span not closed: start %v end %v", sp.Start, sp.End)
	}
	if got := tr.SpanAt(outer); got.End < sp.End {
		t.Fatalf("outer span ended (%v) before inner (%v)", got.End, sp.End)
	}
	// Out-of-range indices return the zero Span instead of stale data.
	if got := tr.SpanAt(-1); got != (Span{}) {
		t.Fatalf("SpanAt(-1) = %+v", got)
	}
	if got := tr.SpanAt(tr.Len()); got != (Span{}) {
		t.Fatalf("SpanAt(Len()) = %+v", got)
	}

	for i := tr.Len(); i < MaxSpans; i++ {
		if tr.Start("fill") < 0 {
			t.Fatalf("Start rejected below capacity at %d", i)
		}
	}
	if tr.Start("overflow") != -1 {
		t.Fatal("Start above capacity must return -1")
	}
	if tr.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", tr.Dropped)
	}

	total := tr.Finish(200)
	if total <= 0 || tr.Total != total || tr.Status != 200 {
		t.Fatalf("Finish: total %v status %d", tr.Total, tr.Status)
	}

	// Begin must fully reset reused (pooled) storage.
	tr.Begin(ID{9}, SpanID{}, "stream")
	if tr.Len() != 0 || tr.Dropped != 0 || tr.Network != "" || tr.Status != 0 || tr.Total != 0 {
		t.Fatalf("Begin did not reset: %+v", tr)
	}
}

func mkTrace(id byte, route, network string, total time.Duration, status int) *Trace {
	var tr Trace
	tr.Begin(ID{id}, SpanID{}, route)
	tr.SetNetwork(network)
	i := tr.Start("stage")
	tr.End(i)
	tr.Finish(status)
	tr.Total = total // pin a deterministic duration for ordering tests
	return &tr
}

func TestRecorderKeepsSlowestPerRoute(t *testing.T) {
	r := NewRecorder([]string{"locate", "schedule"}, 2, 2)
	rt := r.RouteIndex("locate")
	if rt < 0 {
		t.Fatal("RouteIndex(locate) < 0")
	}
	if r.RouteIndex("nope") != -1 {
		t.Fatal("unknown route must map to -1")
	}

	r.Offer(rt, mkTrace(1, "locate", "a", 10*time.Millisecond, 200))
	r.Offer(rt, mkTrace(2, "locate", "a", 30*time.Millisecond, 200))
	r.Offer(rt, mkTrace(3, "locate", "a", 20*time.Millisecond, 200))
	r.Offer(rt, mkTrace(4, "locate", "a", 5*time.Millisecond, 200)) // too fast, dropped

	got := r.Snapshot("locate", 0)
	if len(got) != 2 {
		t.Fatalf("Snapshot len = %d, want 2: %+v", len(got), got)
	}
	if got[0].DurationMS != 30 || got[1].DurationMS != 20 {
		t.Fatalf("kept wrong traces: %v, %v ms", got[0].DurationMS, got[1].DurationMS)
	}
	if got[0].Route != "locate" || len(got[0].Spans) != 1 || got[0].Spans[0].Name != "stage" {
		t.Fatalf("captured shape wrong: %+v", got[0])
	}

	// min-duration filter.
	if n := len(r.Snapshot("locate", 25*time.Millisecond)); n != 1 {
		t.Fatalf("min filter: got %d, want 1", n)
	}
	// Route filter: nothing offered on schedule.
	if n := len(r.Snapshot("schedule", 0)); n != 0 {
		t.Fatalf("schedule lane not empty: %d", n)
	}
	// Out-of-range and nil offers are safe no-ops.
	r.Offer(-1, mkTrace(9, "locate", "a", time.Second, 200))
	r.Offer(99, mkTrace(9, "locate", "a", time.Second, 200))
	r.Offer(rt, nil)
	var nilRec *Recorder
	nilRec.Offer(0, mkTrace(9, "locate", "a", time.Second, 200))
	if nilRec.Snapshot("", 0) != nil || nilRec.RouteIndex("locate") != -1 {
		t.Fatal("nil recorder must be inert")
	}
}

func TestRecorderKeepsErroredRequests(t *testing.T) {
	r := NewRecorder([]string{"locate"}, 1, 2)
	rt := r.RouteIndex("locate")

	// A fast errored request must survive even when slow traces crowd it
	// out of the slow lane.
	r.Offer(rt, mkTrace(1, "locate", "a", 1*time.Millisecond, 429))
	r.Offer(rt, mkTrace(2, "locate", "a", 50*time.Millisecond, 200))
	r.Offer(rt, mkTrace(3, "locate", "a", 60*time.Millisecond, 200))

	got := r.Snapshot("", 0)
	var sawErr, sawSlow bool
	for _, c := range got {
		if c.Status == 429 {
			sawErr = true
		}
		if c.DurationMS == 60 {
			sawSlow = true
		}
	}
	if !sawErr || !sawSlow {
		t.Fatalf("want errored and slowest kept, got %+v", got)
	}

	// A trace in both lanes (slow and errored) appears once.
	r2 := NewRecorder([]string{"locate"}, 2, 2)
	tr := mkTrace(7, "locate", "a", 40*time.Millisecond, 500)
	r2.Offer(0, tr)
	if n := len(r2.Snapshot("", 0)); n != 1 {
		t.Fatalf("dual-lane trace deduped to %d entries, want 1", n)
	}
}

func TestRecorderDropNetwork(t *testing.T) {
	r := NewRecorder([]string{"locate", "schedule"}, 2, 2)
	r.Offer(0, mkTrace(1, "locate", "doomed", 10*time.Millisecond, 200))
	r.Offer(0, mkTrace(2, "locate", "doomed", 10*time.Millisecond, 503))
	r.Offer(0, mkTrace(3, "locate", "kept", 20*time.Millisecond, 200))
	r.Offer(1, mkTrace(4, "schedule", "doomed", 5*time.Millisecond, 200))

	r.DropNetwork("doomed")

	got := r.Snapshot("", 0)
	if len(got) != 1 || got[0].Network != "kept" {
		t.Fatalf("DropNetwork left %+v, want only network=kept", got)
	}
	// Dropped slots are reusable.
	r.Offer(0, mkTrace(5, "locate", "next", 15*time.Millisecond, 200))
	if n := len(r.Snapshot("locate", 0)); n != 2 {
		t.Fatalf("slot not reusable after drop: %d captured", n)
	}
	r.DropNetwork("") // no-op, must not panic
}

func TestCaptureOpenSpanExtendsToTotal(t *testing.T) {
	var tr Trace
	tr.Begin(ID{1}, SpanID{}, "stream")
	tr.Start("stream") // never ended
	tr.Finish(200)
	tr.Total = 10 * time.Millisecond
	c := capture(&tr)
	if len(c.Spans) != 1 {
		t.Fatalf("spans = %d", len(c.Spans))
	}
	if c.Spans[0].DurationMS <= 0 || c.Spans[0].DurationMS > c.DurationMS {
		t.Fatalf("open span duration %v vs total %v", c.Spans[0].DurationMS, c.DurationMS)
	}
}
