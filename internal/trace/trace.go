package trace

import (
	"crypto/rand"
	"encoding/binary"
	"os"
	"sync/atomic"
	"time"
	"unsafe"
)

// ID is a W3C trace-context trace ID: 16 bytes, rendered as 32 lowercase
// hex digits. The all-zero ID is invalid.
type ID [16]byte

// SpanID is a W3C trace-context parent/span ID: 8 bytes, 16 hex digits.
type SpanID [8]byte

const hexdigits = "0123456789abcdef"

// String renders the ID as 32 lowercase hex digits. Cold path: allocates.
func (id ID) String() string {
	var b [32]byte
	hexEncode(b[:], id[:])
	return string(b[:])
}

// String renders the SpanID as 16 lowercase hex digits. Cold path.
func (s SpanID) String() string {
	var b [16]byte
	hexEncode(b[:], s[:])
	return string(b[:])
}

// IsZero reports whether the ID is the invalid all-zero trace ID.
func (id ID) IsZero() bool { return id == ID{} }

func hexEncode(dst, src []byte) {
	for i, v := range src {
		dst[2*i] = hexdigits[v>>4]
		dst[2*i+1] = hexdigits[v&0x0f]
	}
}

// hexDecode decodes lowercase/uppercase hex into dst, returning false on
// any non-hex byte. len(src) must be 2*len(dst).
func hexDecode(dst []byte, src string) bool {
	for i := range dst {
		hi, ok1 := hexNibble(src[2*i])
		lo, ok2 := hexNibble(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// traceparentLen is the fixed length of a version-00 traceparent header:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceparentLen = 55

// ParseTraceparent parses a W3C traceparent header value. Per the
// trace-context spec: version "ff" is invalid; an unknown future
// version is parsed as version 00, tolerating additional fields after
// the flags as long as they are "-"-separated; version 00 itself must
// be exactly the four version-00 fields. ok=false for malformed input,
// an all-zero trace ID, or an all-zero parent span ID (both reserved
// as invalid by the spec). Allocation-free.
func ParseTraceparent(h string) (ID, SpanID, bool) {
	var id ID
	var sp SpanID
	if len(h) < traceparentLen {
		return id, sp, false
	}
	var ver [1]byte
	if !hexDecode(ver[:], h[0:2]) || ver[0] == 0xff {
		return id, sp, false
	}
	if ver[0] == 0 && len(h) != traceparentLen {
		return id, sp, false
	}
	if ver[0] != 0 && len(h) > traceparentLen && h[traceparentLen] != '-' {
		return id, sp, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return id, sp, false
	}
	if !hexDecode(id[:], h[3:35]) || !hexDecode(sp[:], h[36:52]) {
		return ID{}, SpanID{}, false
	}
	var flags [1]byte
	if !hexDecode(flags[:], h[53:55]) {
		return ID{}, SpanID{}, false
	}
	if id.IsZero() || sp == (SpanID{}) {
		return ID{}, SpanID{}, false
	}
	return id, sp, true
}

// FormatTraceparent renders a version-00 traceparent header with the
// sampled flag set. One string allocation; per-request, not per-span.
func FormatTraceparent(id ID, span SpanID) string {
	var b [traceparentLen]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hexEncode(b[3:35], id[:])
	b[35] = '-'
	hexEncode(b[36:52], span[:])
	b[52] = '-'
	b[53], b[54] = '0', '1'
	return string(b[:])
}

// Span is one recorded stage: Start and End are monotonic offsets from
// the owning trace's Begin instant. End == 0 means still open (or never
// ended); a span that genuinely starts and ends at offset 0 records
// End as 1ns to stay distinguishable.
type Span struct {
	Name  string
	Start time.Duration
	End   time.Duration
}

// MaxSpans is the fixed per-request span capacity. Requests that record
// more spans drop the excess and count them in Trace.Dropped.
const MaxSpans = 16

// Trace accumulates the spans of one request. The zero value is unusable
// until Begin; a nil *Trace is safe to call every method on (all are
// no-ops), which is how un-instrumented callers opt out.
//
// Traces are embedded by value in pooled per-request state (the serving
// layer's statusWriter), so span storage is reused across requests
// without a pool of its own.
type Trace struct {
	ID      ID
	Parent  SpanID
	Route   string
	Network string
	Status  int
	Wall    time.Time     // wall-clock begin, for display only
	Total   time.Duration // set by Finish
	Dropped int           // spans rejected because the buffer was full

	t0    time.Time // monotonic anchor
	spans [MaxSpans]Span
	n     int
}

// Begin resets the trace for a new request. It captures both clocks
// itself so callers under the determinism lint never read time.Now.
func (t *Trace) Begin(id ID, parent SpanID, route string) {
	if t == nil {
		return
	}
	t.ID = id
	t.Parent = parent
	t.Route = route
	t.Network = ""
	t.Status = 0
	t.Total = 0
	t.Dropped = 0
	t.n = 0
	t.Wall = time.Now()
	t.t0 = t.Wall
}

// Start opens a named span and returns its index, or -1 when the trace
// is nil, unbegun, or full. The name must be a constant or hoisted
// string: Start stores it without copying.
//
//sinr:hotpath
func (t *Trace) Start(name string) int {
	if t == nil || t.t0.IsZero() {
		return -1
	}
	if t.n >= MaxSpans {
		t.Dropped++
		return -1
	}
	i := t.n
	t.n++
	t.spans[i] = Span{Name: name, Start: time.Since(t.t0)}
	return i
}

// End closes the span returned by Start. Safe on -1 and on nil traces.
//
//sinr:hotpath
func (t *Trace) End(i int) {
	if t == nil || i < 0 || i >= t.n {
		return
	}
	d := time.Since(t.t0)
	if d <= t.spans[i].Start {
		d = t.spans[i].Start + 1
	}
	t.spans[i].End = d
}

// SetName renames an open span — used when the cheap name chosen at
// Start turns out wrong (e.g. a schedule build that became a repair).
func (t *Trace) SetName(i int, name string) {
	if t == nil || i < 0 || i >= t.n {
		return
	}
	t.spans[i].Name = name
}

// SetNetwork attaches the network name the request resolved to.
func (t *Trace) SetNetwork(name string) {
	if t == nil {
		return
	}
	t.Network = name
}

// Finish stamps the final status and total duration and returns the
// total. Safe on nil (returns 0).
func (t *Trace) Finish(status int) time.Duration {
	if t == nil {
		return 0
	}
	t.Status = status
	t.Total = time.Since(t.t0)
	return t.Total
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// SpanAt returns the i'th recorded span, or the zero Span when t is
// nil or i is out of range — like every other method, safe on a nil
// trace.
func (t *Trace) SpanAt(i int) Span {
	if t == nil || i < 0 || i >= t.n {
		return Span{}
	}
	return t.spans[i]
}

// IDSource derives request-scoped IDs from one random 64-bit prefix and
// an atomic sequence number: request ID n is (prefix, n) and its trace
// ID is the 16-byte big-endian concatenation prefix||n, so the two are
// unifiable by inspection.
type IDSource struct {
	prefix uint64
	seq    atomic.Uint64
}

// NewIDSource seeds the prefix from crypto/rand. If that fails the
// prefix is derived from an FNV-64a hash over the process ID and the
// source's own address — deterministic inputs, but never a wall-clock
// read.
func NewIDSource() *IDSource {
	s := &IDSource{}
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		s.prefix = binary.LittleEndian.Uint64(b[:])
		return s
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(os.Getpid()))
	mix(uint64(uintptr(unsafe.Pointer(s))))
	s.prefix = h
	return s
}

// Prefix returns the source's random prefix.
func (s *IDSource) Prefix() uint64 { return s.prefix }

// Next returns the next sequence number.
func (s *IDSource) Next() uint64 { return s.seq.Add(1) }

// TraceID builds the trace ID for sequence number seq: the big-endian
// prefix in bytes 0..7 and seq in bytes 8..15.
func (s *IDSource) TraceID(seq uint64) ID {
	var id ID
	binary.BigEndian.PutUint64(id[0:8], s.prefix)
	binary.BigEndian.PutUint64(id[8:16], seq)
	return id
}

// SpanIDFor derives a span ID for sequence number seq. The high byte is
// flipped from the prefix so a span ID never equals the top half of the
// trace ID it belongs to.
func (s *IDSource) SpanIDFor(seq uint64) SpanID {
	var sp SpanID
	binary.BigEndian.PutUint64(sp[:], s.prefix^seq^0xa5a5a5a5a5a5a5a5)
	return sp
}
