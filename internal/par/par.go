// Package par is the tiny shared worker-pool kit under the
// concurrency layer: worker-count normalization and chunked sharding
// of an index range over goroutines. internal/core (locator builds,
// batch queries) and internal/raster (row rendering) both shard
// through it, so the 0-means-NumCPU convention and the chunking
// arithmetic live in exactly one place.
package par

import (
	"runtime"
	"sync"
)

// Default is the worker count used when a Workers knob is left at
// zero: runtime.GOMAXPROCS(0), i.e. one worker per schedulable CPU.
func Default() int { return runtime.GOMAXPROCS(0) }

// Norm clamps a Workers knob to [1, n], where n bounds the useful
// parallelism (the number of independent work items); workers <= 0
// means Default().
func Norm(workers, n int) int {
	if workers <= 0 {
		workers = Default()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Chunks splits [0, n) into at most workers contiguous chunks and
// runs fn(lo, hi) on each from its own goroutine, returning once
// every chunk is done. workers <= 1 or n <= 1 degrades to a plain
// call on the calling goroutine (no goroutines spawned, no
// synchronization).
func Chunks(n, workers int, fn func(lo, hi int)) {
	workers = Norm(workers, n)
	if workers == 1 || n <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
