package par

import (
	"sync"
	"testing"
)

// TestChunksCovers pins the sharding contract: every index visited
// exactly once across awkward worker/size combinations.
func TestChunksCovers(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, w := range []int{-1, 0, 1, 2, 3, 16, 2000} {
			visits := make([]int, n)
			var mu sync.Mutex
			Chunks(n, w, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					visits[i]++
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, v)
				}
			}
		}
	}
}

// TestNorm pins the clamp: 0 and negatives mean Default(), results
// never exceed the item count and never drop below one.
func TestNorm(t *testing.T) {
	if got := Norm(0, 1000000); got != Default() {
		t.Fatalf("Norm(0, big) = %d, want Default() = %d", got, Default())
	}
	if got := Norm(-3, 1000000); got != Default() {
		t.Fatalf("Norm(-3, big) = %d, want Default() = %d", got, Default())
	}
	if got := Norm(16, 4); got != 4 {
		t.Fatalf("Norm(16, 4) = %d, want 4", got)
	}
	if got := Norm(5, 0); got != 1 {
		t.Fatalf("Norm(5, 0) = %d, want 1", got)
	}
}
