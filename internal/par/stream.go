package par

import (
	"context"
	"sync"
)

// StreamChunk is the largest number of queued items one stream job
// carries. Under sustained load jobs fill completely and the stream
// amortizes scheduling over StreamChunk items; under trickle traffic
// jobs flush as soon as the input channel runs dry, keeping latency at
// one handoff.
const StreamChunk = 256

// streamJob is one chunk of stream input moving through the pipeline.
// Jobs are pooled: the items and res buffers and the done channel are
// recycled once the emitter has drained the answers, so a sustained
// stream reaches an allocation-free steady state (no per-chunk or
// per-item garbage; only the answers the caller receives).
type streamJob[In, Out any] struct {
	items []In
	res   []Out
	done  chan struct{} // one signal per trip through the pool
}

// Stream answers a live stream of queries: it reads items from in
// until the channel closes or ctx is cancelled, maps each through fn
// on a pool of workers, and delivers the answers on the returned
// channel in input order, one Out per input item. workers <= 0 means
// Default().
//
// Items are gathered into chunks of up to StreamChunk: each chunk is
// processed by one worker while later chunks are still being read, so
// a sustained stream keeps every worker busy, while a slow trickle is
// flushed immediately (a chunk never waits for more input once the
// reader would block). Jobs — input buffer, answer buffer and
// completion signal alike — are recycled through a sync.Pool, so
// steady-state streaming performs no per-chunk allocations.
//
// The output channel is closed after the last answer, or as soon as
// ctx is cancelled (possibly dropping in-flight answers); cancelled
// callers need not drain it. Abandoning the stream without cancelling
// ctx leaks the pipeline goroutines — cancel when done early.
func Stream[In, Out any](ctx context.Context, in <-chan In, workers int, fn func(In) Out) <-chan Out {
	if workers <= 0 {
		workers = Default()
	}
	out := make(chan Out, StreamChunk)
	jobs := make(chan *streamJob[In, Out], workers)    // feeds the worker pool
	pending := make(chan *streamJob[In, Out], workers) // same jobs, input order, feeds the emitter

	var jobPool = sync.Pool{
		New: func() any {
			return &streamJob[In, Out]{
				items: make([]In, 0, StreamChunk),
				res:   make([]Out, 0, StreamChunk),
				done:  make(chan struct{}, 1),
			}
		},
	}

	// Reader: gather items into chunks, flushing on chunk-full, on a
	// would-block read (latency), on input close, and on cancellation.
	go func() {
		defer close(jobs)
		defer close(pending)
		for {
			// Block for the first item of the next chunk.
			var item In
			var ok bool
			select {
			case <-ctx.Done():
				return
			case item, ok = <-in:
				if !ok {
					return
				}
			}
			job := jobPool.Get().(*streamJob[In, Out])
			job.items = append(job.items[:0], item)
			// Drain without blocking until the chunk fills.
		fill:
			for len(job.items) < StreamChunk {
				select {
				case item, ok = <-in:
					if !ok {
						break fill
					}
					job.items = append(job.items, item)
				default:
					break fill
				}
			}
			select {
			case <-ctx.Done():
				return
			case jobs <- job:
			}
			select {
			case <-ctx.Done():
				return
			case pending <- job:
			}
			if !ok {
				return
			}
		}
	}()

	// Workers: process each chunk into the job's own answer buffer and
	// signal the emitter.
	for w := 0; w < workers; w++ {
		go func() {
			for job := range jobs {
				job.res = job.res[:0]
				for _, item := range job.items {
					job.res = append(job.res, fn(item))
				}
				job.done <- struct{}{}
			}
		}()
	}

	// Emitter: release answers in input order, then recycle the job.
	// The done signal has been consumed by the time a job is pooled,
	// so a recycled job's channel is always empty.
	go func() {
		defer close(out)
		for job := range pending {
			<-job.done
			for _, o := range job.res {
				select {
				case <-ctx.Done():
					return
				case out <- o:
				}
			}
			jobPool.Put(job)
		}
	}()
	return out
}
