package par

import (
	"context"
	"sync"
)

// StreamChunk is the largest number of queued items one stream job
// carries. Under sustained load jobs fill completely and the stream
// amortizes scheduling over StreamChunk items; under trickle traffic
// jobs flush as soon as the input channel runs dry, keeping latency at
// one handoff.
const StreamChunk = 256

// streamJob is one chunk of stream input moving through the pipeline.
type streamJob[In, Out any] struct {
	items []In
	done  chan []Out
}

// Stream answers a live stream of queries: it reads items from in
// until the channel closes or ctx is cancelled, maps each through fn
// on a pool of workers, and delivers the answers on the returned
// channel in input order, one Out per input item. workers <= 0 means
// Default().
//
// Items are gathered into chunks of up to StreamChunk: each chunk is
// processed by one worker while later chunks are still being read, so
// a sustained stream keeps every worker busy, while a slow trickle is
// flushed immediately (a chunk never waits for more input once the
// reader would block). Chunk buffers are recycled through a pool, so
// steady-state streaming allocates only the answer slices.
//
// The output channel is closed after the last answer, or as soon as
// ctx is cancelled (possibly dropping in-flight answers); cancelled
// callers need not drain it. Abandoning the stream without cancelling
// ctx leaks the pipeline goroutines — cancel when done early.
func Stream[In, Out any](ctx context.Context, in <-chan In, workers int, fn func(In) Out) <-chan Out {
	if workers <= 0 {
		workers = Default()
	}
	out := make(chan Out, StreamChunk)
	jobs := make(chan streamJob[In, Out], workers)    // feeds the worker pool
	pending := make(chan streamJob[In, Out], workers) // same jobs, input order, feeds the emitter

	var bufPool = sync.Pool{
		New: func() any { return make([]In, 0, StreamChunk) },
	}

	// Reader: gather items into chunks, flushing on chunk-full, on a
	// would-block read (latency), on input close, and on cancellation.
	go func() {
		defer close(jobs)
		defer close(pending)
		for {
			// Block for the first item of the next chunk.
			var item In
			var ok bool
			select {
			case <-ctx.Done():
				return
			case item, ok = <-in:
				if !ok {
					return
				}
			}
			buf := bufPool.Get().([]In)[:0]
			buf = append(buf, item)
			// Drain without blocking until the chunk fills.
		fill:
			for len(buf) < StreamChunk {
				select {
				case item, ok = <-in:
					if !ok {
						break fill
					}
					buf = append(buf, item)
				default:
					break fill
				}
			}
			job := streamJob[In, Out]{items: buf, done: make(chan []Out, 1)}
			select {
			case <-ctx.Done():
				return
			case jobs <- job:
			}
			select {
			case <-ctx.Done():
				return
			case pending <- job:
			}
			if !ok {
				return
			}
		}
	}()

	// Workers: process each chunk and hand the answers back.
	for w := 0; w < workers; w++ {
		go func() {
			for job := range jobs {
				res := make([]Out, len(job.items))
				for i, item := range job.items {
					res[i] = fn(item)
				}
				bufPool.Put(job.items[:0])
				job.done <- res
			}
		}()
	}

	// Emitter: release answers in input order.
	go func() {
		defer close(out)
		for job := range pending {
			res := <-job.done
			for _, o := range res {
				select {
				case <-ctx.Done():
					return
				case out <- o:
				}
			}
		}
	}()
	return out
}
