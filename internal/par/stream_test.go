package par

import (
	"context"
	"runtime"
	"testing"
)

// TestStreamOrderedSustained pushes far more items than StreamChunk
// through a multi-worker stream and asserts answers arrive in input
// order, one per item.
func TestStreamOrderedSustained(t *testing.T) {
	ctx := context.Background()
	const n = 50_000
	in := make(chan int, 1024)
	go func() {
		for i := 0; i < n; i++ {
			in <- i
		}
		close(in)
	}()
	out := Stream(ctx, in, 4, func(i int) int { return i * 3 })
	got := 0
	for v := range out {
		if v != got*3 {
			t.Fatalf("answer %d = %d, want %d (order broken)", got, v, got*3)
		}
		got++
	}
	if got != n {
		t.Fatalf("stream delivered %d answers, want %d", got, n)
	}
}

// TestStreamCancelStopsPipeline cancels mid-stream and asserts the
// output channel closes without the producer blocking forever.
func TestStreamCancelStopsPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan int)
	go func() {
		for i := 0; ; i++ {
			select {
			case in <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := Stream(ctx, in, 2, func(i int) int { return i })
	for i := 0; i < 100; i++ {
		<-out
	}
	cancel()
	for range out {
	}
}

// TestStreamSteadyStateAllocs measures per-item allocations of a
// sustained stream: the job pool must recycle chunk buffers, answer
// buffers and completion channels, so the amortized cost approaches
// zero (well under one allocation per item; the fixed pipeline setup
// is amortized over 100k items).
func TestStreamSteadyStateAllocs(t *testing.T) {
	ctx := context.Background()
	const n = 100_000
	run := func() {
		in := make(chan int, StreamChunk)
		go func() {
			for i := 0; i < n; i++ {
				in <- i
			}
			close(in)
		}()
		out := Stream(ctx, in, 2, func(i int) int { return i + 1 })
		for range out {
		}
	}
	run() // warm the pools and the scheduler

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	perItem := float64(after.Mallocs-before.Mallocs) / float64(n)
	if perItem > 0.05 {
		t.Fatalf("stream allocates %.3f objects/item in steady state, want < 0.05", perItem)
	}
}
